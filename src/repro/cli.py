"""Command-line interface for running WATTER experiments.

Six subcommands cover the common workflows:

* ``compare`` — run several algorithms over one generated workload and
  print the comparison table (the Table III default experiment),
* ``run``    — execute a scenario described by a JSON/YAML spec file
  (``repro.api.ScenarioSpec`` serialised with ``to_dict``); with
  ``--checkpoint-dir``/``--checkpoint-interval`` the run snapshots
  resumable state every N ticks, and ``--resume CKPT`` continues an
  interrupted run from its last checkpoint (see docs/DURABILITY.md),
* ``sweep``   — regenerate one of the paper's figures (vary orders,
  workers, deadline or capacity) as text tables,
* ``example1`` — rerun the worked example of the introduction,
* ``bench``  — micro-benchmark the distance-oracle backends on a
  realistic query mix and print the timing table,
* ``serve``  — stand up the resident scenario service (``repro.serve``):
  an asyncio HTTP server (or ``--stdin`` JSON-lines loop) that accepts
  ScenarioSpec documents, shares prepared networks/oracles across
  concurrent runs and streams results to sinks (see docs/SERVING.md);
  with ``--state-dir`` accepted runs are journaled write-ahead and
  recovered after a crash, and ``SIGTERM`` drains gracefully within
  ``--drain-grace`` seconds (see docs/DURABILITY.md).

Every workload command accepts ``--oracle
{lazy,landmark,matrix,ch,overlay}`` to pick the shortest-path backend
(``overlay`` adds ``--coarsen-levels`` / ``--coarsen-alpha``) and
``--oracle-cache DIR`` to persist (and reuse) CH preprocessing and
coarsening hierarchies on disk, without touching any code.

The CLI is intentionally a thin veneer over :mod:`repro.api` — every
flag set maps onto a :class:`~repro.api.ScenarioSpec`, so anything it
can do is equally reachable (and scriptable) from Python.

Usage::

    python -m repro.cli compare --dataset CDC --orders 120 --workers 24
    python -m repro.cli run --spec scenario.json
    python -m repro.cli sweep --figure fig5 --dataset XIA
    python -m repro.cli example1
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .api import RunResult, ScenarioSpec, Session, load_spec
from .experiments.benchmarking import (
    PARALLEL_ACCEPTANCE_SHARDS,
    bench_scenario_identity,
    benchmark_ch_preprocessing_cache,
    benchmark_csr_kernel,
    benchmark_dispatch_queries,
    benchmark_oracles,
    benchmark_parallel_dispatch,
    benchmark_spatial_index,
    format_dispatch_bench_table,
    format_oracle_bench_table,
    format_parallel_bench_lines,
    write_dispatch_trajectory,
)
from .experiments.config import default_config
from .experiments.reporting import (
    format_comparison_table,
    format_full_sweep_report,
    format_oracle_stats_table,
)
from .experiments.runner import ALGORITHMS
from .datasets.workloads import build_workload
from .network.oracle import KERNELS, available_backends
from .simulation.parallel import DISPATCH_MODES
from .experiments.sweeps import (
    vary_capacity,
    vary_deadline,
    vary_num_orders,
    vary_num_workers,
)
from .experiments.worked_example import run_worked_example

_FIGURES = {
    "fig3": vary_num_orders,
    "fig4": vary_num_workers,
    "fig5": vary_deadline,
    "fig6": vary_capacity,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the WATTER ridesharing framework (ICDE 2024)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser(
        "compare", help="run several algorithms over one workload"
    )
    _add_workload_arguments(compare)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=list(ALGORITHMS),
        choices=list(ALGORITHMS),
        help="algorithms to compare (default: all)",
    )
    compare.add_argument(
        "--use-rl",
        action="store_true",
        help="train the RL value function for WATTER-expect instead of the GMM fit",
    )

    run = subparsers.add_parser(
        "run", help="execute a scenario described by a JSON/YAML spec file"
    )
    run.add_argument(
        "--spec",
        required=True,
        metavar="PATH",
        help="scenario file (repro.api.ScenarioSpec as JSON, or YAML with PyYAML)",
    )
    run.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        choices=list(ALGORITHMS),
        help="override the spec's algorithm with a comparison set",
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "snapshot resumable run state to DIR/<algorithm>.ckpt every "
            "--checkpoint-interval periodic checks (single-algorithm "
            "runs only; see docs/DURABILITY.md)"
        ),
    )
    run.add_argument(
        "--checkpoint-interval",
        type=_positive_int,
        default=None,
        metavar="TICKS",
        help="periodic checks between checkpoints (default: 25)",
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="CKPT",
        help=(
            "continue an interrupted run from a checkpoint file written "
            "by --checkpoint-dir (or by a served run under --state-dir); "
            "the finished metrics match an uninterrupted run"
        ),
    )

    sweep = subparsers.add_parser("sweep", help="regenerate one figure of the paper")
    _add_workload_arguments(sweep)
    sweep.add_argument(
        "--figure",
        choices=sorted(_FIGURES),
        default="fig3",
        help="which figure to regenerate",
    )
    sweep.add_argument(
        "--algorithms",
        nargs="+",
        default=["WATTER-expect", "WATTER-online", "WATTER-timeout", "GDP", "GAS"],
        choices=list(ALGORITHMS),
        help="algorithms included in the sweep",
    )

    subparsers.add_parser("example1", help="rerun the worked example of Section I")

    serve = subparsers.add_parser(
        "serve",
        help="run the resident scenario service (HTTP, or JSON-lines on stdin)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="HTTP listen address")
    serve.add_argument(
        "--port",
        type=int,
        default=8700,
        help="HTTP listen port (0 picks a free one)",
    )
    serve.add_argument(
        "--stdin",
        action="store_true",
        help=(
            "serve JSON-lines requests on stdin/stdout instead of HTTP "
            "(one request object per line; exits on EOF or a shutdown op)"
        ),
    )
    serve.add_argument(
        "--max-runs",
        type=_positive_int,
        default=2,
        metavar="N",
        help="how many submitted runs may execute concurrently",
    )
    serve.add_argument(
        "--pool-sessions",
        type=_positive_int,
        default=8,
        metavar="N",
        help="bound of the shared prepared-session pool",
    )
    serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="stream every run's events to DIR/<run_id>.jsonl",
    )
    serve.add_argument(
        "--oracle-cache",
        default=None,
        metavar="DIR",
        help="on-disk oracle-preprocessing cache shared by pooled sessions",
    )
    serve.add_argument(
        "--default-deadline",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget applied to every run whose spec sets no "
            "deadline_seconds; expiry cancels the run at the next tick "
            "boundary (default: unlimited)"
        ),
    )
    serve.add_argument(
        "--max-queue",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "bound on queued (not yet running) runs; a full queue refuses "
            "submissions with a 429 'overloaded' error (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--inject-faults",
        default=None,
        metavar="FILE",
        help=(
            "JSON fault schedule installed for the service's lifetime "
            "(testing aid; see repro.resilience.faults)"
        ),
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "durable run state: a write-ahead run journal, per-run "
            "checkpoints and finished results live here, and a restart "
            "on the same directory recovers every previously accepted "
            "run (see docs/DURABILITY.md)"
        ),
    )
    serve.add_argument(
        "--checkpoint-interval",
        type=_positive_int,
        default=None,
        metavar="TICKS",
        help=(
            "periodic checks between run checkpoints when --state-dir "
            "is set (default: 25)"
        ),
    )
    serve.add_argument(
        "--no-auto-resume",
        action="store_true",
        help=(
            "on recovery, mark crash-orphaned in-flight runs as "
            "interrupted instead of resuming them from their last "
            "checkpoint"
        ),
    )
    serve.add_argument(
        "--drain-grace",
        type=_positive_float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "budget a graceful drain (SIGTERM or POST /shutdown?drain=1) "
            "gives in-flight runs before cutting them at a checkpoint "
            "boundary (default: 30)"
        ),
    )

    bench = subparsers.add_parser(
        "bench", help="micro-benchmark the distance-oracle backends"
    )
    _add_workload_arguments(bench)
    bench.add_argument(
        "--queries",
        type=_positive_int,
        default=4000,
        help="number of shortest-path queries to replay per backend",
    )
    bench.add_argument(
        "--backends",
        nargs="+",
        default=None,
        choices=list(available_backends()),
        help="backends to time (default: all registered)",
    )
    bench.add_argument(
        "--dispatch",
        action="store_true",
        help=(
            "time the many-to-one dispatch mix (many idle workers, one "
            "pickup) and the spatial-index find_worker_for microbenchmark "
            "instead of the point-to-point query mix"
        ),
    )
    bench.add_argument(
        "--dispatch-sources",
        type=_positive_int,
        default=32,
        help="idle worker locations per dispatch round (with --dispatch)",
    )
    bench.add_argument(
        "--dispatch-shards",
        type=_positive_int,
        default=4,
        help=(
            "shard count of the parallel periodic-check benchmark run "
            "with --dispatch (thread and process modes are both timed)"
        ),
    )
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the dispatch benchmark trajectory (BENCH_dispatch.json)",
    )
    return parser


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return parsed


def _positive_float(value: str) -> float:
    parsed = float(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError("must be a positive number")
    return parsed


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="CDC",
        choices=["NYC", "CDC", "XIA", "LARGE", "LARGE-SYNTHETIC"],
        help=(
            "dataset preset: the paper's three cities, or LARGE — the "
            "102400-node synthetic city for the overlay backend"
        ),
    )
    parser.add_argument("--orders", type=int, default=None, help="number of orders")
    parser.add_argument("--workers", type=int, default=None, help="number of workers")
    parser.add_argument("--horizon", type=float, default=None, help="horizon (s)")
    parser.add_argument("--seed", type=int, default=None, help="random seed")
    parser.add_argument(
        "--oracle",
        default=None,
        choices=list(available_backends()),
        help="distance-oracle backend for shortest-path queries",
    )
    parser.add_argument(
        "--oracle-cache",
        default=None,
        metavar="DIR",
        help=(
            "directory for persisted oracle preprocessing; a warm cache "
            "lets the ch backend skip graph contraction entirely"
        ),
    )
    parser.add_argument(
        "--oracle-kernel",
        default=None,
        choices=list(KERNELS),
        help=(
            "inner-loop kernel of the ch/matrix backends: csr = "
            "vectorised numpy sweeps, dict = pure Python, auto = csr "
            "when numpy is importable (identical answers either way)"
        ),
    )
    parser.add_argument(
        "--coarsen-levels",
        type=_positive_int,
        default=None,
        metavar="L",
        help=(
            "matching passes of the overlay backend's multilevel "
            "coarsener (more levels = smaller coarse graph, coarser "
            "estimates; default 3)"
        ),
    )
    parser.add_argument(
        "--coarsen-alpha",
        type=_positive_float,
        default=None,
        metavar="A",
        help=(
            "travel-time weight of the coarsener's merge cost "
            "D_ij = alpha*tau_ij + beta*temporal_slack (default 1)"
        ),
    )
    parser.add_argument(
        "--dispatch-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "shard the periodic check's oracle work across N workers "
            "(results are identical to the serial run; default 1)"
        ),
    )
    parser.add_argument(
        "--dispatch-mode",
        default=None,
        choices=list(DISPATCH_MODES),
        help=(
            "how dispatch shards execute: threads (safe everywhere) or "
            "forked processes with per-shard oracle handles (scales "
            "with cores; Linux only)"
        ),
    )


def _config_from_args(args: argparse.Namespace):
    """Legacy flag-to-config assembly.

    The commands themselves now go through
    :meth:`repro.api.ScenarioSpec.from_args`; this helper is kept (and
    tested) as the reference the spec path must stay equivalent to:
    ``_config_from_args(args) == ScenarioSpec.from_args(args).config()``.
    """
    overrides = {}
    if args.orders is not None:
        overrides["num_orders"] = args.orders
    if args.workers is not None:
        overrides["num_workers"] = args.workers
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.seed is not None:
        overrides["seed"] = args.seed
    if getattr(args, "oracle", None) is not None:
        overrides["oracle_backend"] = args.oracle
    if getattr(args, "oracle_cache", None) is not None:
        overrides["oracle_cache_dir"] = args.oracle_cache
    if getattr(args, "oracle_kernel", None) is not None:
        overrides["oracle_kernel"] = args.oracle_kernel
    if getattr(args, "coarsen_levels", None) is not None:
        overrides["oracle_coarsen_levels"] = args.coarsen_levels
    if getattr(args, "coarsen_alpha", None) is not None:
        overrides["oracle_coarsen_alpha"] = args.coarsen_alpha
    if getattr(args, "dispatch_workers", None) is not None:
        overrides["dispatch_workers"] = args.dispatch_workers
    if getattr(args, "dispatch_mode", None) is not None:
        overrides["dispatch_mode"] = args.dispatch_mode
    return default_config(args.dataset, **overrides)


def _scenario_line(run: RunResult) -> str:
    """One self-describing identity line appended to comparison output."""
    config = run.spec.config()
    return (
        f"scenario: {run.spec.describe()} oracle={config.oracle_backend} "
        f"seed={config.seed} dispatch_workers={config.dispatch_workers} "
        f"graph={run.graph_hash[:12]}"
    )


def _comparison_output(results: list[RunResult], title: str) -> str:
    metrics = [run.metrics for run in results]
    output = format_comparison_table(metrics, title=title)
    oracle_table = format_oracle_stats_table(metrics)
    if oracle_table:
        output += "\n\n" + oracle_table
    output += "\n\n" + _scenario_line(results[0])
    return output


def _run_compare(args: argparse.Namespace) -> str:
    spec = ScenarioSpec.from_args(args)
    config = spec.config()
    results = Session().compare(
        spec, algorithms=args.algorithms, use_rl=args.use_rl
    )
    title = f"Algorithm comparison ({args.dataset}, n={config.num_orders}, m={config.num_workers})"
    return _comparison_output(results, title)


def _run_spec_file(args: argparse.Namespace) -> str:
    spec = load_spec(args.spec)
    if args.checkpoint_dir or args.resume:
        return _run_spec_durable(args, spec)
    algorithms = tuple(args.algorithms) if args.algorithms else (spec.algorithm,)
    results = Session().compare(spec, algorithms=algorithms, use_rl=spec.use_rl)
    config = spec.config()
    title = (
        f"Scenario {spec.describe()} "
        f"(n={config.num_orders}, m={config.num_workers})"
    )
    return _comparison_output(results, title)


def _run_spec_durable(args: argparse.Namespace, spec: ScenarioSpec) -> str:
    """``run`` with checkpointing and/or resume: one durable single run.

    Checkpoints and resumes are per-run state, so this path executes
    exactly one algorithm — the spec's (or the single ``--algorithms``
    override).
    """
    from pathlib import Path

    from .durability import DEFAULT_CHECKPOINT_INTERVAL, Checkpointer

    if args.algorithms and len(args.algorithms) > 1:
        raise SystemExit(
            "--checkpoint-dir/--resume run a single algorithm; pass at "
            "most one --algorithms entry"
        )
    if args.algorithms:
        spec = spec.with_overrides(algorithm=args.algorithms[0])
    hooks = None
    if args.checkpoint_dir:
        directory = Path(args.checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        interval = args.checkpoint_interval or DEFAULT_CHECKPOINT_INTERVAL
        hooks = Checkpointer(
            directory / f"{spec.algorithm}.ckpt", interval=interval
        )
    result = Session().run(spec, hooks=hooks, resume_from=args.resume)
    config = spec.config()
    title = (
        f"Scenario {spec.describe()} "
        f"(n={config.num_orders}, m={config.num_workers})"
    )
    output = _comparison_output([result], title)
    if args.resume:
        output += f"\nresumed from {args.resume}"
    if isinstance(hooks, Checkpointer) and hooks.writes:
        output += (
            f"\n{hooks.writes} checkpoint(s) written to {hooks.path}"
        )
    return output


def _run_sweep(args: argparse.Namespace) -> str:
    config = _config_from_args(args)
    sweep_fn = _FIGURES[args.figure]
    sweep = sweep_fn(args.dataset, base_config=config, algorithms=args.algorithms)
    header = f"=== {args.figure}: {sweep.parameter} sweep on {args.dataset} ==="
    return header + "\n" + format_full_sweep_report(sweep)


def _run_example1() -> str:
    result = run_worked_example()
    lines = ["Example 1 (Figure 1 network, Table I orders)"]
    for name, total in result.as_dict().items():
        lines.append(f"  {name:<28} total worker travel time = {total:7.1f} s")
    return "\n".join(lines)


def _run_bench(args: argparse.Namespace) -> str:
    config = _config_from_args(args)
    if args.dispatch:
        return _run_dispatch_bench(args, config)
    results = benchmark_oracles(
        args.dataset,
        config,
        backends=args.backends,
        num_queries=args.queries,
    )
    title = (
        f"Distance-oracle benchmark ({args.dataset}, {args.queries} queries, "
        f"n={config.num_orders}, m={config.num_workers})"
    )
    return format_oracle_bench_table(results, title=title)


def _run_dispatch_bench(args: argparse.Namespace, config) -> str:
    workload = build_workload(args.dataset, config)
    results = benchmark_dispatch_queries(
        backends=args.backends,
        num_sources=args.dispatch_sources,
        graph=workload.network.graph,
    )
    spatial = benchmark_spatial_index()
    parallel = [
        benchmark_parallel_dispatch(num_shards=args.dispatch_shards, mode=mode)
        for mode in ("thread", "process")
    ]
    ch_cache = benchmark_ch_preprocessing_cache(graph=workload.network.graph)
    csr_kernel = benchmark_csr_kernel()
    title = (
        f"Many-to-one dispatch benchmark ({args.dataset}, "
        f"{args.dispatch_sources} workers per round)"
    )
    output = format_dispatch_bench_table(results, spatial, title=title)
    output += "\n\n" + format_parallel_bench_lines(parallel)
    output += (
        f"\nch preprocessing cache: cold {ch_cache.cold_seconds:.3f}s, "
        f"warm {ch_cache.warm_seconds:.3f}s ({ch_cache.speedup:.1f}x)"
    )
    if csr_kernel.applicable:
        output += (
            f"\ncsr sweep kernel: dict {csr_kernel.dict_seconds:.3f}s, "
            f"csr {csr_kernel.csr_seconds:.3f}s ({csr_kernel.speedup:.1f}x)"
        )
    else:
        output += "\ncsr sweep kernel: not applicable (numpy unavailable)"
    if args.json:
        # Benchmark artifacts are self-describing: the trajectory
        # records which scenario (backend set, seed, graph) produced it.
        scenario = bench_scenario_identity(
            workload.network.graph,
            args.backends if args.backends else available_backends(),
            scenario="dispatch-bench",
            network="dataset",
            dataset=args.dataset,
            seed=config.seed,
            num_orders=config.num_orders,
            num_workers=config.num_workers,
        )
        path = write_dispatch_trajectory(
            args.json, results, spatial, parallel, ch_cache=ch_cache,
            csr_kernel=csr_kernel, scenario=scenario,
        )
        output += f"\n\ntrajectory written to {path}"
        if args.dispatch_shards != PARALLEL_ACCEPTANCE_SHARDS:
            # The regression gate tracks the canonical 4-shard bar; a
            # trajectory measured at another shard count cannot carry
            # that acceptance block, which matters if this file is
            # meant to replace the committed baseline.
            output += (
                f"\nnote: the parallel-dispatch acceptance block is only "
                f"recorded at {PARALLEL_ACCEPTANCE_SHARDS} shards; this "
                f"trajectory (at {args.dispatch_shards}) omits it"
            )
    return output


def _run_serve(args: argparse.Namespace) -> int:
    """Stand the resident scenario service up on the chosen transport."""
    import asyncio
    import signal

    from .serve import ScenarioServer, ScenarioService, serve_stdin

    injector = None
    if args.inject_faults:
        from .resilience import FaultInjector, install_injector

        injector = FaultInjector.from_file(args.inject_faults)
        install_injector(injector)
    service_kwargs = {}
    if args.checkpoint_interval is not None:
        service_kwargs["checkpoint_interval"] = args.checkpoint_interval
    service = ScenarioService(
        max_runs=args.max_runs,
        max_sessions=args.pool_sessions,
        trace_dir=args.trace_dir,
        oracle_cache_dir=args.oracle_cache,
        max_queue=args.max_queue,
        default_deadline=args.default_deadline,
        state_dir=args.state_dir,
        auto_resume=not args.no_auto_resume,
        **service_kwargs,
    )

    async def serve_http() -> None:
        server = ScenarioServer(
            service, args.host, args.port, drain_grace=args.drain_grace
        )
        await server.start()
        host, port = server.address
        print(f"repro.serve listening on http://{host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        try:
            # SIGTERM is the operator's graceful stop: finish (or
            # checkpoint) in-flight runs, journal the clean-shutdown
            # marker, exit 0.
            loop.add_signal_handler(signal.SIGTERM, server.request_drain)
        except NotImplementedError:  # pragma: no cover - non-unix loop
            pass
        try:
            await server.serve_forever()
        finally:
            try:
                loop.remove_signal_handler(signal.SIGTERM)
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass

    try:
        if args.stdin:
            previous = signal.signal(
                signal.SIGTERM, lambda *_: _drain_and_exit(service, args)
            )
            try:
                serve_stdin(service)
            finally:
                signal.signal(signal.SIGTERM, previous)
            return 0
        try:
            asyncio.run(serve_http())
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            service.shutdown(wait=True)
        return 0
    finally:
        if injector is not None:
            from .resilience import uninstall_injector

            uninstall_injector()


def _drain_and_exit(service, args: argparse.Namespace) -> None:
    """SIGTERM handler of the stdin transport: drain, then exit clean."""
    service.drain(args.drain_grace)
    raise SystemExit(0)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "bench" and args.json and not args.dispatch:
        parser.error("--json records the dispatch trajectory; add --dispatch")
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "compare":
        output = _run_compare(args)
    elif args.command == "run":
        output = _run_spec_file(args)
    elif args.command == "sweep":
        output = _run_sweep(args)
    elif args.command == "bench":
        output = _run_bench(args)
    else:
        output = _run_example1()
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
