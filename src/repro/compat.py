"""Optional-dependency guards: the one place that decides numpy exists.

numpy is an accelerator for this package, not a hard requirement.  The
distance oracles degrade to their pure-Python dict kernels without it
(:func:`repro.network.oracle.csr.resolve_kernel`), while the numerical
subsystems that have no scalar fallback — the GMM threshold fitting of
Section V, the MDP state encoder and the value-function training of
Section VI — import cleanly and refuse *construction* with a precise
:class:`~repro.exceptions.DependencyError` instead of crashing the
whole package at import time.

Every module that wants numpy imports ``np`` from here rather than
importing numpy itself, so the availability decision is made exactly
once and the no-numpy CI leg exercises one code path, not nine
divergent ``try: import numpy`` blocks.
"""

from __future__ import annotations

from .exceptions import DependencyError

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pure-Python environment
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "np", "require_numpy"]


def require_numpy(feature: str) -> None:
    """Raise :class:`DependencyError` when *feature* needs missing numpy.

    Called at construction time (not import time) by the subsystems
    that cannot run without numpy, so ``import repro`` always succeeds
    and the error names the feature the caller actually asked for::

        require_numpy("GaussianMixture (GMM threshold fitting)")
    """
    if not HAVE_NUMPY:
        raise DependencyError(
            f"{feature} requires numpy, which is not installed; "
            f"install numpy to use it (the distance oracles and the "
            f"timeout/fixed-threshold dispatch strategies keep working "
            f"without it)"
        )
