"""Declarative scenario description: the facade's unit of configuration.

A :class:`ScenarioSpec` captures *everything* that defines one
simulation scenario — where the road network comes from (a dataset
preset or a generated grid), where the workload comes from (the
synthetic demand model or a replayed CSV order log), the fleet and
workload shape, the dispatcher, the distance-oracle backend and its
options, and the parallelism settings — as one flat, frozen,
serializable value.

Specs are plain data:

* ``to_dict()`` / ``from_dict()`` round-trip losslessly
  (``from_dict(to_dict(spec)) == spec``), so scenarios can live in
  JSON (or YAML) files next to the experiments that use them;
* every field is validated eagerly with a precise
  :class:`~repro.exceptions.ConfigurationError` — unknown keys,
  wrong-typed values and out-of-range numbers all name the offending
  field;
* ``None`` means "use the default": dataset-backed scenarios resolve
  against the paper's Table III defaults for that dataset, everything
  else against :class:`~repro.config.SimulationConfig`'s class
  defaults.  ``config()`` performs that resolution.

The spec layer never *runs* anything — execution belongs to
:class:`repro.api.Session`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from ..config import ExtraTimeWeights, SimulationConfig
from ..exceptions import ConfigurationError
from ..experiments.config import DATASET_DEFAULTS, default_config
from ..experiments.runner import ALGORITHMS

#: Valid road-network sources.
NETWORK_SOURCES = ("dataset", "grid")

#: Options each built-in oracle backend actually consumes (beyond
#: ``backend`` itself).  :class:`OracleSpec` validates eagerly against
#: this table; backends registered at runtime accept any option.
ORACLE_OPTIONS_BY_BACKEND: dict[str, tuple[str, ...]] = {
    "lazy": ("cache_size",),
    "landmark": ("landmarks",),
    "matrix": ("kernel", "shared_memory"),
    "ch": (
        "cache_size",
        "witness_hops",
        "cache_dir",
        "kernel",
        "shared_memory",
        "contraction_order",
        "coarsen_levels",
        "coarsen_alpha",
        "coarsen_beta",
    ),
    "overlay": (
        "cache_size",
        "witness_hops",
        "cache_dir",
        "kernel",
        "coarsen_levels",
        "coarsen_alpha",
        "coarsen_beta",
        "coarsen_error_bound",
        "coarsen_refine",
    ),
}

#: OracleSpec option -> the flat ScenarioSpec / SimulationConfig field
#: it supersedes (the flat fields remain as deprecation shims).
_ORACLE_FIELD_MAP = {
    "backend": "oracle_backend",
    "cache_size": "oracle_cache_size",
    "landmarks": "oracle_landmarks",
    "witness_hops": "oracle_witness_hops",
    "cache_dir": "oracle_cache_dir",
    "kernel": "oracle_kernel",
    "shared_memory": "oracle_shared_memory",
    "coarsen_levels": "oracle_coarsen_levels",
    "coarsen_alpha": "oracle_coarsen_alpha",
    "coarsen_beta": "oracle_coarsen_beta",
    "coarsen_error_bound": "oracle_coarsen_error_bound",
    "coarsen_refine": "oracle_coarsen_refine",
    "contraction_order": "oracle_contraction_order",
}


@dataclass(frozen=True)
class OracleSpec:
    """Typed description of the distance-oracle backend and its options.

    The preferred replacement for the flat ``oracle_backend`` /
    ``oracle_cache_size`` / ``oracle_witness_hops`` plumbing: one
    frozen value naming the backend and exactly the options it
    consumes, validated eagerly.  ``None`` means "use the default".

    Attributes
    ----------
    backend:
        Registry name (``"lazy"``, ``"landmark"``, ``"matrix"``,
        ``"ch"``, or a custom registered backend).  ``None`` keeps the
        scenario's flat/default backend.
    cache_size:
        LRU bound (lazy per-source cache, ch per-target bucket cache).
    landmarks:
        ALT landmark count (landmark backend).
    witness_hops:
        Witness-search hop limit of CH contraction.
    cache_dir:
        On-disk preprocessing cache directory (ch backend).
    kernel:
        ``"dict"`` | ``"csr"`` | ``"auto"`` — inner-loop implementation
        of the ch/matrix backends (csr = vectorised numpy kernels).
    shared_memory:
        Whether process-mode dispatch shards attach to one
        shared-memory copy of the oracle's prepared arrays.
    coarsen_levels, coarsen_alpha, coarsen_beta:
        Multilevel-coarsening knobs of the overlay backend (and of the
        ch backend's ``contraction_order="coarsening"`` variant).
    coarsen_error_bound:
        Certified relative error ceiling of overlay estimates.
    coarsen_refine:
        ``True`` makes the overlay answer every query exactly.
    contraction_order:
        ``"edge_difference"`` | ``"coarsening"`` — node-ordering
        strategy of the ch backend's contraction.

    Setting an option a *built-in* backend does not consume raises a
    :class:`ConfigurationError` listing the backend's valid options at
    construction time.
    """

    backend: str | None = None
    cache_size: int | None = None
    landmarks: int | None = None
    witness_hops: int | None = None
    cache_dir: str | None = None
    kernel: str | None = None
    shared_memory: bool | None = None
    coarsen_levels: int | None = None
    coarsen_alpha: float | None = None
    coarsen_beta: float | None = None
    coarsen_error_bound: float | None = None
    coarsen_refine: bool | None = None
    contraction_order: str | None = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            if not isinstance(self.backend, str) or not self.backend:
                raise ConfigurationError(
                    f"OracleSpec.backend must be a non-empty string, "
                    f"got {self.backend!r}"
                )
            from ..network.oracle.registry import ORACLE_BACKENDS

            if self.backend not in ORACLE_BACKENDS:
                raise ConfigurationError(
                    f"unknown oracle backend {self.backend!r}; available: "
                    f"{tuple(sorted(ORACLE_BACKENDS))}"
                )
        for option in (
            "cache_size",
            "landmarks",
            "witness_hops",
            "coarsen_levels",
        ):
            value = getattr(self, option)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"OracleSpec.{option} must be an integer, got {value!r}"
                )
            if value < 1:
                raise ConfigurationError(
                    f"OracleSpec.{option} must be at least 1, got {value}"
                )
        if self.cache_dir is not None and not isinstance(self.cache_dir, str):
            raise ConfigurationError(
                f"OracleSpec.cache_dir must be a path string, "
                f"got {self.cache_dir!r}"
            )
        if self.kernel is not None:
            from ..network.oracle.csr import KERNELS

            if self.kernel not in KERNELS:
                raise ConfigurationError(
                    f"OracleSpec.kernel must be one of {KERNELS}, "
                    f"got {self.kernel!r}"
                )
        if self.shared_memory is not None and not isinstance(
            self.shared_memory, bool
        ):
            raise ConfigurationError(
                f"OracleSpec.shared_memory must be a boolean, "
                f"got {self.shared_memory!r}"
            )
        for option in ("coarsen_alpha", "coarsen_beta", "coarsen_error_bound"):
            value = getattr(self, option)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"OracleSpec.{option} must be a number, got {value!r}"
                )
            if value < 0:
                raise ConfigurationError(
                    f"OracleSpec.{option} must be non-negative, got {value}"
                )
            object.__setattr__(self, option, float(value))
        if self.coarsen_refine is not None and not isinstance(
            self.coarsen_refine, bool
        ):
            raise ConfigurationError(
                f"OracleSpec.coarsen_refine must be a boolean, "
                f"got {self.coarsen_refine!r}"
            )
        if self.contraction_order is not None:
            from ..network.coarsen.order import CONTRACTION_ORDERS

            if self.contraction_order not in CONTRACTION_ORDERS:
                raise ConfigurationError(
                    f"OracleSpec.contraction_order must be one of "
                    f"{CONTRACTION_ORDERS}, got {self.contraction_order!r}"
                )
        self._check_backend_options()

    def _check_backend_options(self) -> None:
        """Reject options the named built-in backend does not consume."""
        if self.backend is None:
            return
        valid = ORACLE_OPTIONS_BY_BACKEND.get(self.backend)
        if valid is None:  # custom registered backend: accept anything
            return
        set_options = [
            option
            for option in _ORACLE_FIELD_MAP
            if option != "backend" and getattr(self, option) is not None
        ]
        invalid = sorted(set(set_options) - set(valid))
        if invalid:
            raise ConfigurationError(
                f"oracle backend {self.backend!r} does not take option(s) "
                f"{invalid}; valid options for {self.backend!r}: "
                f"{sorted(valid)}"
            )

    def config_overrides(self) -> dict[str, Any]:
        """The set options as ``SimulationConfig`` field overrides."""
        overrides: dict[str, Any] = {}
        for option, config_field in _ORACLE_FIELD_MAP.items():
            value = getattr(self, option)
            if value is not None:
                overrides[config_field] = value
        return overrides

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view; unset (``None``) options are omitted."""
        return {
            spec_field.name: getattr(self, spec_field.name)
            for spec_field in fields(self)
            if getattr(self, spec_field.name) is not None
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OracleSpec":
        """Rebuild from :meth:`to_dict` output; unknown keys fail loudly."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"an OracleSpec document must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown OracleSpec keys: {unknown}; known keys: "
                f"{sorted(known)}"
            )
        return cls(**dict(data))


#: Valid workload sources.
WORKLOAD_SOURCES = ("synthetic", "csv")

#: Spec fields copied verbatim onto :class:`SimulationConfig` when set.
_CONFIG_FIELDS = (
    "num_orders",
    "num_workers",
    "deadline_scale",
    "watch_window_scale",
    "max_capacity",
    "check_period",
    "time_slot",
    "grid_size",
    "penalty_factor",
    "horizon",
    "max_group_size",
    "seed",
    "oracle_backend",
    "oracle_cache_size",
    "oracle_landmarks",
    "oracle_witness_hops",
    "oracle_cache_dir",
    "dispatch_workers",
    "dispatch_mode",
)

_INT_FIELDS = (
    "grid_rows",
    "grid_cols",
    "num_orders",
    "num_workers",
    "seed",
    "max_capacity",
    "grid_size",
    "max_group_size",
    "oracle_cache_size",
    "oracle_landmarks",
    "oracle_witness_hops",
    "dispatch_workers",
)

_FLOAT_FIELDS = (
    "grid_edge_travel_time",
    "grid_jitter",
    "horizon",
    "deadline_scale",
    "watch_window_scale",
    "check_period",
    "time_slot",
    "penalty_factor",
    "alpha",
    "beta",
    "deadline_seconds",
)

#: String fields that must always be set (the spec's structural axes).
_REQUIRED_STR_FIELDS = ("name", "network", "dataset", "workload", "algorithm")

#: String fields where ``None`` means "unset".
_OPTIONAL_STR_FIELDS = (
    "orders_csv",
    "workers_csv",
    "oracle_backend",
    "oracle_cache_dir",
    "dispatch_mode",
)

#: CLI argument name -> spec field name (shared with ``from_args``).
_ARG_FIELDS = (
    ("orders", "num_orders"),
    ("workers", "num_workers"),
    ("horizon", "horizon"),
    ("seed", "seed"),
    ("oracle", "oracle_backend"),
    ("oracle_cache", "oracle_cache_dir"),
    ("dispatch_workers", "dispatch_workers"),
    ("dispatch_mode", "dispatch_mode"),
)

_CANONICAL_ALGORITHMS = {name.lower(): name for name in ALGORITHMS}


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario, declaratively.

    Attributes
    ----------
    name:
        Free-form label echoed into results and artifacts.
    network:
        Road-network source: ``"dataset"`` (the preset synthetic city
        of :attr:`dataset`) or ``"grid"`` (a ``grid_rows x grid_cols``
        lattice generated from the ``grid_*`` fields and the seed).
    dataset:
        Dataset preset (``NYC`` / ``CDC`` / ``XIA``).  Supplies the
        city model *and* the scaled Table III defaults when
        ``network == "dataset"``.
    grid_rows, grid_cols, grid_edge_travel_time, grid_jitter:
        Lattice shape for ``network == "grid"``.
    workload:
        Workload source: ``"synthetic"`` (the demand model of the
        network's city) or ``"csv"`` (replay an order log previously
        written by :func:`repro.datasets.io.orders_to_csv`).
    orders_csv, workers_csv:
        CSV paths for ``workload == "csv"``.  ``workers_csv`` is
        optional — when absent, workers are sampled at order pickup
        nodes exactly like the synthetic generator does.
    algorithm:
        Dispatcher under test (any of ``repro.experiments.runner.
        ALGORITHMS``, case-insensitive).
    use_rl:
        For ``WATTER-expect``: train the Section VI value network
        instead of using the GMM threshold fit.
    oracle:
        Typed :class:`OracleSpec` naming the distance-oracle backend
        and its validated options (including the ``kernel`` and
        ``shared_memory`` toggles).  This is the preferred spelling;
        the flat ``oracle_*`` fields below remain as deprecation shims
        and must agree with it when both are set.
    num_orders .. dispatch_mode:
        Optional overrides of the corresponding
        :class:`~repro.config.SimulationConfig` fields; ``None`` keeps
        the resolved default.  ``alpha``/``beta`` expand into the
        extra-time weights.  The flat ``oracle_backend`` /
        ``oracle_cache_size`` / ``oracle_landmarks`` /
        ``oracle_witness_hops`` / ``oracle_cache_dir`` fields are
        deprecated in favour of :attr:`oracle` (they keep working and
        resolve identically).
    deadline_seconds:
        Wall-clock budget for one execution of this scenario,
        enforced cooperatively at tick boundaries (see
        :mod:`repro.resilience.cancellation`).  ``None`` means
        unlimited; ``repro serve --default-deadline`` supplies a
        service-wide default for specs that leave it unset.
    """

    name: str = ""
    network: str = "dataset"
    dataset: str = "CDC"
    grid_rows: int = 22
    grid_cols: int = 22
    grid_edge_travel_time: float = 70.0
    grid_jitter: float = 0.2
    workload: str = "synthetic"
    orders_csv: str | None = None
    workers_csv: str | None = None
    algorithm: str = "WATTER-online"
    use_rl: bool = False
    num_orders: int | None = None
    num_workers: int | None = None
    horizon: float | None = None
    seed: int | None = None
    deadline_scale: float | None = None
    watch_window_scale: float | None = None
    max_capacity: int | None = None
    check_period: float | None = None
    time_slot: float | None = None
    grid_size: int | None = None
    penalty_factor: float | None = None
    max_group_size: int | None = None
    alpha: float | None = None
    beta: float | None = None
    oracle: OracleSpec | None = None
    oracle_backend: str | None = None
    oracle_cache_size: int | None = None
    oracle_landmarks: int | None = None
    oracle_witness_hops: int | None = None
    oracle_cache_dir: str | None = None
    dispatch_workers: int | None = None
    dispatch_mode: str | None = None
    deadline_seconds: float | None = None

    # ------------------------------------------------------------------
    # validation and normalisation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self._check_types()
        object.__setattr__(self, "network", self.network.lower())
        object.__setattr__(self, "workload", self.workload.lower())
        object.__setattr__(self, "dataset", self.dataset.upper())
        if self.network not in NETWORK_SOURCES:
            raise ConfigurationError(
                f"ScenarioSpec.network must be one of {NETWORK_SOURCES}, "
                f"got {self.network!r}"
            )
        if self.workload not in WORKLOAD_SOURCES:
            raise ConfigurationError(
                f"ScenarioSpec.workload must be one of {WORKLOAD_SOURCES}, "
                f"got {self.workload!r}"
            )
        if self.network == "dataset" and self.dataset not in DATASET_DEFAULTS:
            raise ConfigurationError(
                f"ScenarioSpec.dataset must be one of "
                f"{tuple(sorted(DATASET_DEFAULTS))}, got {self.dataset!r}"
            )
        if self.network == "grid":
            if self.grid_rows < 2 or self.grid_cols < 2:
                raise ConfigurationError(
                    "ScenarioSpec grid networks need at least a 2x2 lattice "
                    f"(got {self.grid_rows}x{self.grid_cols})"
                )
            if self.grid_edge_travel_time <= 0:
                raise ConfigurationError(
                    "ScenarioSpec.grid_edge_travel_time must be positive"
                )
            if not 0.0 <= self.grid_jitter < 1.0:
                raise ConfigurationError(
                    "ScenarioSpec.grid_jitter must lie in [0, 1)"
                )
        if self.workload == "csv":
            if not self.orders_csv:
                raise ConfigurationError(
                    "ScenarioSpec.workload='csv' needs orders_csv to point at "
                    "an order log (written by repro.datasets.io.orders_to_csv)"
                )
        elif self.orders_csv is not None or self.workers_csv is not None:
            raise ConfigurationError(
                "ScenarioSpec.orders_csv/workers_csv only apply to "
                "workload='csv'"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                "ScenarioSpec.deadline_seconds must be a positive number of "
                f"seconds, got {self.deadline_seconds!r}"
            )
        canonical = _CANONICAL_ALGORITHMS.get(self.algorithm.lower())
        if canonical is None:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; expected one of "
                f"{ALGORITHMS}"
            )
        object.__setattr__(self, "algorithm", canonical)
        if isinstance(self.oracle, Mapping):
            object.__setattr__(self, "oracle", OracleSpec.from_dict(self.oracle))
        elif self.oracle is not None and not isinstance(self.oracle, OracleSpec):
            raise ConfigurationError(
                f"ScenarioSpec.oracle must be an OracleSpec (or a mapping), "
                f"got {self.oracle!r}"
            )
        if self.oracle is not None:
            # The flat fields are shims for the nested spec; both set
            # and disagreeing is a contradiction, not a precedence case.
            for option, flat_field in _ORACLE_FIELD_MAP.items():
                nested = getattr(self.oracle, option)
                flat = getattr(self, flat_field, None)
                if nested is not None and flat is not None and nested != flat:
                    raise ConfigurationError(
                        f"ScenarioSpec.oracle.{option}={nested!r} contradicts "
                        f"the deprecated flat field {flat_field}={flat!r}; "
                        f"set one of them (prefer ScenarioSpec.oracle)"
                    )
        # Resolving the SimulationConfig eagerly surfaces every numeric
        # constraint violation (negative order counts, unknown oracle
        # backends, bad dispatch modes, ...) with the library's precise
        # ConfigurationError messages at *spec construction* time.
        self.config()

    def _check_types(self) -> None:
        for field_name in _INT_FIELDS:
            value = getattr(self, field_name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"ScenarioSpec.{field_name} must be an integer, "
                    f"got {value!r}"
                )
        for field_name in _FLOAT_FIELDS:
            value = getattr(self, field_name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"ScenarioSpec.{field_name} must be a number, got {value!r}"
                )
            object.__setattr__(self, field_name, float(value))
        for field_name in _REQUIRED_STR_FIELDS:
            value = getattr(self, field_name)
            if not isinstance(value, str):
                raise ConfigurationError(
                    f"ScenarioSpec.{field_name} must be a string, got {value!r}"
                )
        for field_name in _OPTIONAL_STR_FIELDS:
            value = getattr(self, field_name)
            if value is not None and not isinstance(value, str):
                raise ConfigurationError(
                    f"ScenarioSpec.{field_name} must be a string, got {value!r}"
                )
        if not isinstance(self.use_rl, bool):
            raise ConfigurationError(
                f"ScenarioSpec.use_rl must be a boolean, got {self.use_rl!r}"
            )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def config(self) -> SimulationConfig:
        """Resolve the spec into the validated internal configuration.

        Dataset-backed scenarios start from the scaled Table III
        defaults of their dataset; grid scenarios start from
        :class:`SimulationConfig`'s class defaults.  Explicitly set
        fields override the base either way.
        """
        overrides: dict[str, Any] = {}
        for field_name in _CONFIG_FIELDS:
            value = getattr(self, field_name)
            if value is not None:
                overrides[field_name] = value
        if self.oracle is not None:
            # The typed spec wins where set (__post_init__ guarantees it
            # never silently disagrees with a set flat field).
            overrides.update(self.oracle.config_overrides())
        if self.alpha is not None or self.beta is not None:
            overrides["weights"] = ExtraTimeWeights(
                alpha=self.alpha if self.alpha is not None else 1.0,
                beta=self.beta if self.beta is not None else 1.0,
            )
        if self.network == "dataset":
            return default_config(self.dataset, **overrides)
        base = SimulationConfig()
        return base.with_overrides(**overrides) if overrides else base

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """Return a copy with the given fields replaced (typos fail loudly)."""
        known = {spec_field.name for spec_field in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ScenarioSpec fields: {sorted(unknown)}"
            )
        return replace(self, **overrides)

    @classmethod
    def from_config(
        cls,
        dataset: str,
        config: SimulationConfig,
        algorithm: str = "WATTER-online",
        use_rl: bool = False,
        name: str = "",
    ) -> "ScenarioSpec":
        """Lift a legacy ``(dataset, SimulationConfig)`` pair into a spec.

        Every config field is captured explicitly, so
        ``spec.config() == config`` holds exactly — this is what lets
        the legacy ``run_comparison``/sweep entry points delegate to
        the facade without changing a single metric.
        """
        values = {
            field_name: getattr(config, field_name)
            for field_name in _CONFIG_FIELDS
        }
        # Kernel / shared-memory / coarsening knobs only exist on the
        # typed spec; capture them there when the config strays from the
        # defaults so ``spec.config() == config`` stays exact.
        defaults = SimulationConfig()
        oracle_kwargs: dict[str, Any] = {}
        if (
            config.oracle_kernel != "auto"
            or config.oracle_shared_memory is not True
        ):
            oracle_kwargs["kernel"] = config.oracle_kernel
            oracle_kwargs["shared_memory"] = config.oracle_shared_memory
        for option, config_field in (
            ("coarsen_levels", "oracle_coarsen_levels"),
            ("coarsen_alpha", "oracle_coarsen_alpha"),
            ("coarsen_beta", "oracle_coarsen_beta"),
            ("coarsen_error_bound", "oracle_coarsen_error_bound"),
            ("coarsen_refine", "oracle_coarsen_refine"),
            ("contraction_order", "oracle_contraction_order"),
        ):
            value = getattr(config, config_field, None)
            if value is not None and value != getattr(defaults, config_field):
                oracle_kwargs[option] = value
        oracle = OracleSpec(**oracle_kwargs) if oracle_kwargs else None
        return cls(
            name=name,
            network="dataset",
            dataset=dataset,
            algorithm=algorithm,
            use_rl=use_rl,
            alpha=config.weights.alpha,
            beta=config.weights.beta,
            oracle=oracle,
            **values,
        )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "ScenarioSpec":
        """Build a spec from the CLI's parsed workload arguments.

        Mirrors the CLI's legacy ``_config_from_args`` exactly:
        ``ScenarioSpec.from_args(args).config()`` equals the config the
        CLI used to assemble by hand.
        """
        overrides: dict[str, Any] = {}
        for arg_name, field_name in _ARG_FIELDS:
            value = getattr(args, arg_name, None)
            if value is not None:
                overrides[field_name] = value
        # Kernel and coarsening knobs have no flat shim fields: they
        # ride on the typed spec.
        oracle_kwargs: dict[str, Any] = {}
        for arg_name, option in (
            ("oracle_kernel", "kernel"),
            ("coarsen_levels", "coarsen_levels"),
            ("coarsen_alpha", "coarsen_alpha"),
        ):
            value = getattr(args, arg_name, None)
            if value is not None:
                oracle_kwargs[option] = value
        if oracle_kwargs:
            overrides["oracle"] = OracleSpec(**oracle_kwargs)
        spec = cls(dataset=getattr(args, "dataset", "CDC"))
        return spec.with_overrides(**overrides) if overrides else spec

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-able view; unset (``None``) fields are omitted."""
        data: dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value is None:
                continue
            if spec_field.name == "oracle":
                value = value.to_dict()
            data[spec_field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a spec file).

        Unknown keys are rejected with the full key listed, so a typo
        in a scenario file fails loudly instead of silently running the
        default.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a ScenarioSpec document must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown ScenarioSpec keys: {unknown}; known keys: "
                f"{sorted(known)}"
            )
        return cls(**dict(data))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Short human label (the explicit name, or source + algorithm)."""
        if self.name:
            return self.name
        source = (
            self.dataset
            if self.network == "dataset"
            else f"grid{self.grid_rows}x{self.grid_cols}"
        )
        return f"{source}/{self.workload}/{self.algorithm}"

    def identity(self) -> dict[str, Any]:
        """Self-describing scenario identity for benchmark artifacts.

        The resolved values that determine what a run measured: the
        source, the oracle backend, the seed and the parallelism —
        callers append the network's ``graph_hash`` once a graph
        exists.
        """
        config = self.config()
        identity: dict[str, Any] = {
            "scenario": self.describe(),
            "network": self.network,
            "workload": self.workload,
            "algorithm": self.algorithm,
            "oracle_backend": config.oracle_backend,
            "oracle_kernel": config.oracle_kernel,
            "seed": config.seed,
            "num_orders": config.num_orders,
            "num_workers": config.num_workers,
            "dispatch_workers": config.dispatch_workers,
        }
        if self.network == "dataset":
            identity["dataset"] = self.dataset
        return identity
