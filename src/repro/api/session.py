"""Reusable execution context: prepare once, run many scenarios.

A :class:`Session` owns everything that is expensive to stand up and
cheap to reuse:

* **networks** — dataset-preset cities and generated grids are built
  once per distinct source signature and shared by every scenario that
  names the same source;
* **oracles** — the configured distance-oracle backend is attached to
  the shared network with ``reuse=True``, so two scenarios on the same
  network construct the CH hierarchy (or the dense matrix) exactly
  once.  With an ``oracle_cache_dir`` the CH contraction products are
  additionally persisted to disk keyed by a stable graph hash, so even
  a *fresh process* skips preprocessing;
* **workloads** — generation is deterministic per configuration, so
  identical scenario shapes replay the same memoised workload (LRU
  bounded);
* **threshold providers** — the WATTER-expect bootstrap (training
  workload, GMM fit, optional value-network training) is memoised per
  scenario signature.

``Session.run`` returns a structured :class:`RunResult` — metrics,
per-order outcomes, oracle statistics, wall-clock timings and the spec
echo — and accepts a :class:`~repro.simulation.hooks.SimulationHooks`
observer for streaming state out of the engine.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from pathlib import Path
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..config import SimulationConfig
from ..core.strategies import ThresholdProvider
from ..datasets.io import orders_from_csv, workers_from_csv
from ..datasets.synthetic import CityModel, DemandHotspot, Workload
from ..datasets.workloads import city_by_name
from ..durability.checkpoint import (
    CheckpointError,
    Checkpointer,
    LoadedCheckpoint,
    load_checkpoint,
)
from ..exceptions import ConfigurationError
from ..experiments.runner import (
    ALGORITHMS,
    _build_expect_provider,
    make_dispatcher,
)
from ..model.order import OrderOutcome
from ..model.worker import Worker
from ..network.generators import grid_city
from ..network.graph import RoadNetwork
from ..network.oracle import configure_oracle, graph_signature
from ..resilience.cancellation import CancellationToken, RunCancelled
from ..resilience.degradation import DegradationLog
from ..simulation.engine import Simulator
from ..simulation.hooks import SimulationHooks
from ..simulation.metrics import SimulationMetrics
from .spec import ScenarioSpec

#: Workloads kept alive by one session (LRU): a sweep touches a handful
#: of shapes, and regeneration is deterministic anyway.
_WORKLOAD_CACHE_SIZE = 8


@dataclass(frozen=True)
class RunResult:
    """Everything one facade run produced.

    Attributes
    ----------
    spec:
        The *effective* spec that ran (session defaults applied,
        algorithm canonicalised) — the self-describing echo to attach
        to artifacts.
    algorithm:
        Canonical algorithm name.
    metrics:
        The paper's aggregate metrics (includes ``oracle_stats``).
    outcomes:
        Per-order accounting records, in the order they were decided.
    timings:
        Wall-clock breakdown: ``prepare_seconds`` (workload + oracle +
        provider), ``run_seconds`` (the simulation), ``total_seconds``.
    graph_hash:
        Stable content hash of the road network the run used; makes
        results and benchmark artifacts self-describing.
    degradations:
        Fallbacks the run survived (corrupt-cache rebuild, oracle
        backend fallback, dispatch-mode downgrades, ...), each a dict
        with ``site``/``from``/``to``/``reason`` keys.  Empty for a
        clean run.
    """

    spec: ScenarioSpec
    algorithm: str
    metrics: SimulationMetrics
    outcomes: tuple[OrderOutcome, ...]
    timings: Mapping[str, float]
    graph_hash: str
    degradations: tuple[dict[str, str], ...] = ()

    @property
    def service_rate(self) -> float:
        """Convenience accessor mirroring the headline metric."""
        return self.metrics.service_rate

    @property
    def oracle_stats(self) -> Mapping[str, float | str] | None:
        """Distance-oracle counters accumulated during this run."""
        return self.metrics.oracle_stats

    def summary(self) -> dict[str, Any]:
        """Flat dictionary convenient for tabular reports and JSON."""
        row: dict[str, Any] = dict(self.metrics.summary_row())
        row["scenario"] = self.spec.describe()
        row["graph_hash"] = self.graph_hash
        return row


class Session:
    """Prepares networks and oracles once, then runs many scenarios.

    Preparation is thread-safe: every memoisation cache and the oracle
    attach sit behind one session lock, so concurrent ``prepare``/
    ``run`` calls (the ``repro.serve`` executor submits them from a
    thread pool) build each network, workload and oracle exactly once.
    The simulations themselves execute outside the lock; note that two
    *simultaneous* runs over the same network share one oracle, whose
    backends are not generally safe under concurrent queries — the
    serving layer serialises those through its cross-request batcher
    (:mod:`repro.serve.batcher`), and direct users should either do
    the same or keep concurrent runs on distinct networks.

    Parameters
    ----------
    oracle_cache_dir:
        Default on-disk oracle-preprocessing cache applied to every
        scenario that does not set its own ``oracle_cache_dir``.  With
        a warm directory, a brand-new process constructing the ``ch``
        backend loads the persisted contraction order instead of
        re-contracting the graph.
    """

    def __init__(self, *, oracle_cache_dir: str | None = None) -> None:
        self._oracle_cache_dir = oracle_cache_dir
        self._networks: dict[tuple, RoadNetwork] = {}
        self._cities: dict[tuple, CityModel] = {}
        self._workloads: OrderedDict[tuple, Workload] = OrderedDict()
        self._providers: dict[tuple, ThresholdProvider] = {}
        self._graph_hashes: dict[RoadNetwork, str] = {}
        # One reentrant lock guards every memoisation dict *and* the
        # oracle attach, so concurrent ``prepare``/``run`` calls (the
        # repro.serve layer submits them from a thread pool) build each
        # network, workload, provider and oracle exactly once — the
        # second caller blocks until the first finished building and
        # then reuses the cached object.  Preparation is serialised;
        # the simulations themselves run outside the lock.
        self._lock = threading.RLock()
        #: How many times a run actually (re)built an oracle — two runs
        #: over one network with the same oracle settings count once
        #: (asserted by the concurrency tests and the serve pool).
        self.oracle_builds = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        spec: ScenarioSpec,
        *,
        hooks: SimulationHooks | None = None,
        workload: Workload | None = None,
        provider: ThresholdProvider | None = None,
        cancellation: CancellationToken | None = None,
        degradations: DegradationLog | None = None,
        resume_from: str | Path | LoadedCheckpoint | None = None,
    ) -> RunResult:
        """Execute one scenario and return its structured result.

        Parameters
        ----------
        spec:
            The scenario to run.
        hooks:
            Optional engine observer (``on_order_arrival`` /
            ``on_periodic_check`` / ``on_assign``).
        workload:
            Escape hatch for custom demand models: run the spec's
            dispatcher and settings over a caller-built workload
            instead of the spec's source.
        provider:
            Pre-built threshold provider for ``WATTER-expect`` (one is
            bootstrapped and memoised automatically when omitted).
        cancellation:
            Caller-owned token checked at every tick boundary; omitted,
            one is created from ``spec.deadline_seconds`` when the spec
            sets a deadline.  Deadline expiry or an explicit ``cancel``
            raises :class:`~repro.resilience.cancellation.RunCancelled`
            whose ``partial`` attribute carries the timings measured so
            far and the degradations recorded up to the cut.
        degradations:
            Caller-owned log continued across :meth:`prepare` and the
            run, so preparation-time fallbacks survive into the result;
            a fresh log is created when omitted.
        resume_from:
            Continue an interrupted run from a checkpoint: a path to a
            checkpoint file written by a
            :class:`~repro.durability.Checkpointer` (or an
            already-loaded checkpoint).  The scenario is prepared as
            usual — same workload, same oracle — then the checkpoint's
            dispatcher and collector take over from its cursor instead
            of a fresh ``make_dispatcher``.  The checkpoint's recorded
            identity (graph hash, algorithm, order count) must match
            the spec's scenario; a mismatch, torn file or CRC failure
            raises :class:`~repro.durability.CheckpointError`.  Final
            metrics are identical to an uninterrupted run (wall-clock
            timings and per-run oracle deltas aside).
        """
        spec = self._effective(spec)
        config = spec.config()
        if cancellation is None and spec.deadline_seconds is not None:
            cancellation = CancellationToken(spec.deadline_seconds)
        if degradations is None:
            degradations = DegradationLog()
        started = time.perf_counter()
        if cancellation is not None:
            # The budget covers preparation too: a spec whose oracle
            # build alone exceeds the deadline must not start simulating.
            cancellation.start()
        custom_workload = workload is not None
        if workload is None:
            workload = self.workload(spec)
        self._attach_oracle(workload, config, degradations=degradations)
        if (
            provider is None
            and resume_from is None
            and spec.algorithm.lower() == "watter-expect"
        ):
            # A caller-supplied workload must also drive the threshold
            # bootstrap, otherwise the thresholds would be fitted to
            # the spec's source while evaluation runs different demand.
            # (A resumed dispatcher carries its bound provider inside
            # the checkpoint, so the bootstrap is skipped entirely.)
            provider = self.expect_provider(
                spec, workload=workload if custom_workload else None
            )
        graph_hash = self.graph_hash(workload.network)
        resume = self._load_resume(resume_from, spec, workload, graph_hash)
        if resume is not None:
            # The first half's recorded fallbacks travel with the
            # checkpoint; replay them so the finished result reports
            # the whole run's degradations, not just the resumed tail.
            for event in resume.degradations:
                degradations.record(
                    event.get("site", "unknown"),
                    event.get("from", ""),
                    event.get("to", ""),
                    event.get("reason", "recorded before interruption"),
                )
        self._stamp_checkpoint_meta(
            hooks,
            {
                "graph_hash": graph_hash,
                "algorithm": spec.algorithm,
                "total_orders": len(workload.orders),
                "scenario": spec.describe(),
                "spec": spec.to_dict(),
            },
        )
        prepare_seconds = time.perf_counter() - started
        if cancellation is not None:
            self._check_cancelled(
                cancellation, degradations, prepare_seconds, graph_hash
            )
        if hooks is not None:
            start_info: dict[str, Any] = {
                "spec": spec.to_dict(),
                "scenario": spec.describe(),
                "algorithm": spec.algorithm,
                "graph_hash": graph_hash,
            }
            if resume is not None:
                start_info["resumed_from"] = resume.cursor.as_dict()
            hooks.on_run_start(start_info)
        run_started = time.perf_counter()
        dispatcher = (
            resume.dispatcher
            if resume is not None
            else make_dispatcher(spec.algorithm, workload, config, provider)
        )
        try:
            result = Simulator(
                workload,
                dispatcher,
                config,
                hooks=hooks,
                cancellation=cancellation,
                degradations=degradations,
                resume=resume,
            ).run()
        except RunCancelled as exc:
            exc.partial = _partial_snapshot(
                prepare_seconds,
                time.perf_counter() - run_started,
                graph_hash,
                degradations,
            )
            raise
        run_seconds = time.perf_counter() - run_started
        timings = {
            "prepare_seconds": prepare_seconds,
            "run_seconds": run_seconds,
            "total_seconds": prepare_seconds + run_seconds,
        }
        run_result = RunResult(
            spec=spec,
            algorithm=spec.algorithm,
            metrics=result.metrics,
            outcomes=tuple(result.collector.outcomes),
            timings=timings,
            graph_hash=graph_hash,
            degradations=tuple(degradations.as_dicts()),
        )
        if hooks is not None:
            hooks.on_run_end(
                {
                    "spec": spec.to_dict(),
                    "scenario": spec.describe(),
                    "algorithm": spec.algorithm,
                    "graph_hash": graph_hash,
                    "timings": dict(timings),
                    "metrics": run_result.metrics.summary_row(),
                }
            )
        return run_result

    def compare(
        self,
        spec: ScenarioSpec,
        algorithms: Sequence[str] = ALGORITHMS,
        *,
        use_rl: bool | None = None,
        hooks: SimulationHooks | None = None,
        workload: Workload | None = None,
    ) -> list[RunResult]:
        """Run several algorithms over the *same* workload.

        The workload, the warmed oracle and (when ``WATTER-expect`` is
        among the algorithms) the threshold provider are shared, so the
        compared runs differ in dispatching logic alone — the facade
        equivalent of the legacy ``run_comparison``.
        """
        spec = self._effective(spec)
        if use_rl is not None and use_rl != spec.use_rl:
            spec = spec.with_overrides(use_rl=use_rl)
        provider: ThresholdProvider | None = None
        if any(name.lower() == "watter-expect" for name in algorithms):
            provider = self.expect_provider(spec, workload=workload)
        results = []
        for algorithm in algorithms:
            results.append(
                self.run(
                    spec.with_overrides(algorithm=algorithm),
                    hooks=hooks,
                    workload=workload,
                    provider=provider,
                )
            )
        return results

    # ------------------------------------------------------------------
    # prepared state
    # ------------------------------------------------------------------
    def network(self, spec: ScenarioSpec) -> RoadNetwork:
        """The (shared) road network the spec's scenarios run on."""
        spec = self._effective(spec)
        return self._network_for(spec, spec.config())

    def workload(self, spec: ScenarioSpec) -> Workload:
        """Generate — or replay from the session cache — the spec's workload."""
        spec = self._effective(spec)
        config = spec.config()
        key = self._workload_key(spec, config)
        with self._lock:
            cached = self._workloads.get(key)
            if cached is not None:
                self._workloads.move_to_end(key)
                return cached
            workload = self._build_workload(spec, config)
            self._workloads[key] = workload
            if len(self._workloads) > _WORKLOAD_CACHE_SIZE:
                self._workloads.popitem(last=False)
            return workload

    def prepare(
        self,
        spec: ScenarioSpec,
        *,
        degradations: DegradationLog | None = None,
    ) -> Workload:
        """Stand the scenario's workload and oracle up without running it.

        ``degradations`` lets the caller capture preparation-time
        fallbacks (corrupt cache rebuilds, CH build failures demoted to
        the lazy oracle); pass the same log to :meth:`run` so those
        events surface in the :class:`RunResult`.
        """
        spec = self._effective(spec)
        config = spec.config()
        workload = self.workload(spec)
        self._attach_oracle(workload, config, degradations=degradations)
        return workload

    def expect_provider(
        self, spec: ScenarioSpec, workload: Workload | None = None
    ) -> ThresholdProvider:
        """The memoised WATTER-expect threshold provider for this scenario.

        Bootstrapped exactly like the legacy
        :func:`~repro.experiments.runner.build_expect_provider` — a
        training workload with a shifted seed and half the orders, a
        WATTER-timeout bootstrap run, the Section V GMM fit, optionally
        the Section VI value network — but sourcing the training
        workload from whatever the spec describes (dataset preset, grid
        city or CSV replay).  ``workload`` substitutes for the spec's
        source when the caller runs a custom workload — those providers
        are *not* memoised (the session cannot tell two caller-built
        workloads apart by spec alone, and a provider fitted to one
        demand model must never silently serve another).

        Replayed logs and caller-built workloads have no shifted-seed
        sibling to train on, so their bootstrap runs over a *thinned
        subsample* (every other order, capped at the derived training
        size) instead of the exact evaluation set — reducing, though
        not eliminating, the train/test overlap the synthetic path
        avoids entirely.
        """
        spec = self._effective(spec)
        config = spec.config()
        if workload is not None:
            return _build_expect_provider(
                lambda training_config: _training_subsample(
                    workload, training_config
                ),
                config,
                use_rl=spec.use_rl,
            )
        key = self._provider_key(spec, config)
        with self._lock:
            cached = self._providers.get(key)
            if cached is not None:
                return cached
            return self._build_provider(spec, config, key)

    def _build_provider(
        self, spec: ScenarioSpec, config: SimulationConfig, key: tuple
    ) -> ThresholdProvider:
        """Bootstrap + memoise a provider (caller holds the session lock)."""

        def workload_for(training_config: SimulationConfig) -> Workload:
            training_spec = spec.with_overrides(
                num_orders=training_config.num_orders,
                seed=training_config.seed,
            )
            training = self.workload(training_spec)
            if spec.workload == "csv":
                # The overrides cannot change a replayed log; thin it
                # instead of training on the evaluation orders.
                return _training_subsample(training, training_config)
            return training

        provider = _build_expect_provider(
            workload_for, config, use_rl=spec.use_rl
        )
        self._providers[key] = provider
        return provider

    def graph_hash(self, network: RoadNetwork) -> str:
        """Stable content hash of a network's graph (memoised per object)."""
        with self._lock:
            cached = self._graph_hashes.get(network)
            if cached is None:
                cached = graph_signature(network.graph)
                self._graph_hashes[network] = cached
            return cached

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _effective(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Apply session-level defaults (today: the oracle cache dir)."""
        if self._oracle_cache_dir and spec.oracle_cache_dir is None:
            return spec.with_overrides(oracle_cache_dir=self._oracle_cache_dir)
        return spec

    def _attach_oracle(
        self,
        workload: Workload,
        config: SimulationConfig,
        *,
        degradations: DegradationLog | None = None,
    ) -> None:
        with self._lock:
            before = workload.network.oracle
            oracle = configure_oracle(
                workload.network,
                config,
                nodes=workload.active_nodes(),
                reuse=True,
                degradations=degradations,
            )
            if oracle is not before:
                self.oracle_builds += 1

    @staticmethod
    def _load_resume(
        resume_from: "str | Path | LoadedCheckpoint | None",
        spec: ScenarioSpec,
        workload: Workload,
        graph_hash: str,
    ) -> LoadedCheckpoint | None:
        """Load (if a path) and validate a resume checkpoint for this run.

        Identity checks are what keep a resume honest: the checkpoint's
        recorded graph hash, algorithm and order count must match the
        scenario being resumed, and its cursor must lie inside the
        workload.  Spec fields that do not shape the replay (deadlines,
        cache directories) may differ freely.
        """
        if resume_from is None:
            return None
        loaded = (
            resume_from
            if isinstance(resume_from, LoadedCheckpoint)
            else load_checkpoint(resume_from, network=workload.network)
        )
        meta = loaded.meta
        recorded_hash = meta.get("graph_hash")
        if recorded_hash is not None and recorded_hash != graph_hash:
            raise CheckpointError(
                f"checkpoint was taken on graph {recorded_hash[:12]}… but this "
                f"scenario runs on {graph_hash[:12]}… — resume the spec that "
                f"produced it"
            )
        recorded_algorithm = meta.get("algorithm")
        if (
            recorded_algorithm is not None
            and str(recorded_algorithm).lower() != spec.algorithm.lower()
        ):
            raise CheckpointError(
                f"checkpoint holds {recorded_algorithm!r} state but the spec "
                f"asks for {spec.algorithm!r}"
            )
        recorded_orders = meta.get("total_orders")
        if recorded_orders is not None and recorded_orders != len(workload.orders):
            raise CheckpointError(
                f"checkpoint was taken over {recorded_orders} orders but the "
                f"prepared workload has {len(workload.orders)}"
            )
        if loaded.cursor.order_index > len(workload.orders):
            raise CheckpointError(
                f"checkpoint cursor points past the workload "
                f"({loaded.cursor.order_index} > {len(workload.orders)} orders)"
            )
        return loaded

    @staticmethod
    def _stamp_checkpoint_meta(
        hooks: SimulationHooks | None, meta: Mapping[str, Any]
    ) -> None:
        """Give every attached :class:`Checkpointer` the run's identity.

        Callers attach a bare ``Checkpointer(path)``; the session knows
        the prepared run's graph hash and order count, so it stamps
        them here — that is what :meth:`_load_resume` validates against
        later.  Caller-set meta keys win.
        """
        if hooks is None:
            return
        stack: list[SimulationHooks] = [hooks]
        while stack:
            hook = stack.pop()
            if isinstance(hook, Checkpointer):
                hook.meta = {**meta, **hook.meta}
            children = getattr(hook, "children", None)
            if children:
                stack.extend(children)

    @staticmethod
    def _check_cancelled(
        cancellation: CancellationToken,
        degradations: DegradationLog,
        prepare_seconds: float,
        graph_hash: str,
    ) -> None:
        """Post-preparation checkpoint — enriches the failure with a partial."""
        try:
            cancellation.check()
        except RunCancelled as exc:
            exc.partial = _partial_snapshot(
                prepare_seconds, 0.0, graph_hash, degradations
            )
            raise

    def _network_key(self, spec: ScenarioSpec, config: SimulationConfig) -> tuple:
        if spec.network == "dataset":
            return ("dataset", spec.dataset, config.seed)
        return (
            "grid",
            spec.grid_rows,
            spec.grid_cols,
            spec.grid_edge_travel_time,
            spec.grid_jitter,
            config.seed,
        )

    def _workload_key(self, spec: ScenarioSpec, config: SimulationConfig) -> tuple:
        return (
            self._network_key(spec, config),
            spec.workload,
            spec.orders_csv,
            spec.workers_csv,
            config,
        )

    def _provider_key(self, spec: ScenarioSpec, config: SimulationConfig) -> tuple:
        return (*self._workload_key(spec, config), spec.use_rl)

    def _network_for(
        self, spec: ScenarioSpec, config: SimulationConfig
    ) -> RoadNetwork:
        key = self._network_key(spec, config)
        with self._lock:
            network = self._networks.get(key)
            if network is not None:
                return network
            if spec.network == "dataset":
                city = city_by_name(spec.dataset, seed=config.seed)
                self._cities[key] = city
                network = city.network
            else:
                network = grid_city(
                    rows=spec.grid_rows,
                    cols=spec.grid_cols,
                    edge_travel_time=spec.grid_edge_travel_time,
                    jitter=spec.grid_jitter,
                    seed=config.seed,
                )
            self._networks[key] = network
            return network

    def _city_for(self, spec: ScenarioSpec, config: SimulationConfig) -> CityModel:
        key = self._network_key(spec, config)
        with self._lock:
            network = self._network_for(spec, config)
            city = self._cities.get(key)
            if city is None:
                city = _grid_city_model(spec, network)
                self._cities[key] = city
            return city

    def _build_workload(
        self, spec: ScenarioSpec, config: SimulationConfig
    ) -> Workload:
        if spec.workload == "synthetic":
            return self._city_for(spec, config).generate(config)
        return self._csv_workload(spec, config)

    def _csv_workload(
        self, spec: ScenarioSpec, config: SimulationConfig
    ) -> Workload:
        network = self._network_for(spec, config)
        assert spec.orders_csv is not None  # enforced by the spec
        orders = orders_from_csv(spec.orders_csv)
        for order in orders:
            if order.pickup not in network or order.dropoff not in network:
                raise ConfigurationError(
                    f"replayed order {order.order_id} references node "
                    f"{order.pickup if order.pickup not in network else order.dropoff}"
                    f" absent from the scenario's {spec.network!r} network — "
                    f"the spec must describe the network the log was recorded on"
                )
        if spec.workers_csv is not None:
            workers = workers_from_csv(spec.workers_csv)
            for worker in workers:
                if worker.location not in network:
                    raise ConfigurationError(
                        f"replayed worker {worker.worker_id} parks on node "
                        f"{worker.location} absent from the scenario's network"
                    )
        else:
            # No fleet log: sample start locations from the observed
            # pickups, the same choice the synthetic generator makes.
            rng = random.Random(config.seed)
            pickups = [order.pickup for order in orders]
            workers = [
                Worker(
                    location=rng.choice(pickups),
                    capacity=rng.randint(2, config.max_capacity),
                )
                for _ in range(config.num_workers)
            ]
        return Workload(
            orders=orders,
            workers=workers,
            network=network,
            name=spec.name or "csv-replay",
        )


def _partial_snapshot(
    prepare_seconds: float,
    run_seconds: float,
    graph_hash: str,
    degradations: DegradationLog,
) -> dict[str, Any]:
    """What a cancelled run can still report: timings and degradations."""
    return {
        "timings": {
            "prepare_seconds": prepare_seconds,
            "run_seconds": run_seconds,
            "total_seconds": prepare_seconds + run_seconds,
        },
        "graph_hash": graph_hash,
        "degradations": degradations.as_dicts(),
    }


def _training_subsample(
    workload: Workload, training_config: SimulationConfig
) -> Workload:
    """Thinned copy of a fixed workload for threshold training.

    Every other order, capped at the derived training size — the
    closest available stand-in for the synthetic path's disjoint
    shifted-seed training workload when the orders are a replayed log
    that cannot be regenerated.
    """
    orders = list(workload.orders[::2][: max(training_config.num_orders, 1)])
    if not orders:
        orders = list(workload.orders)
    return Workload(
        orders=orders,
        workers=list(workload.workers),
        network=workload.network,
        name=f"{workload.name}-train",
    )


def _grid_city_model(spec: ScenarioSpec, network: RoadNetwork) -> CityModel:
    """Default demand model for generated grid networks.

    A centre-weighted hotspot mix over the lattice's bounding box:
    demand concentrates downtown with two satellite clusters, plus a
    uniform background — enough spatial clustering to make pooling
    meaningful without requiring the user to hand-build a
    :class:`CityModel` for every quick grid experiment.
    """
    min_x, min_y, max_x, max_y = network.bounding_box()
    cx, cy = (min_x + max_x) / 2.0, (min_y + max_y) / 2.0
    spread = max(max_x - min_x, max_y - min_y, 1.0) / 6.0
    quarter_x, quarter_y = (max_x - min_x) / 4.0, (max_y - min_y) / 4.0
    pickup_hotspots = [
        DemandHotspot(x=cx, y=cy, spread=spread, weight=2.0),
        DemandHotspot(x=cx - quarter_x, y=cy + quarter_y, spread=spread, weight=1.0),
        DemandHotspot(x=cx + quarter_x, y=cy - quarter_y, spread=spread, weight=1.0),
    ]
    dropoff_hotspots = [
        DemandHotspot(x=cx, y=cy, spread=1.5 * spread, weight=1.5),
        DemandHotspot(x=cx + quarter_x, y=cy + quarter_y, spread=spread, weight=1.0),
    ]
    return CityModel(
        name=spec.name or f"GRID-{spec.grid_rows}x{spec.grid_cols}",
        network=network,
        pickup_hotspots=pickup_hotspots,
        dropoff_hotspots=dropoff_hotspots,
        uniform_fraction=0.3,
        min_trip_time=2.0 * spec.grid_edge_travel_time,
    )
