"""Module-level facade functions: one-call execution over specs.

These are the verbs of the public API — ``run_scenario`` for a single
run, ``compare`` for several algorithms over one workload, ``sweep``
for one parameter across several values — plus the spec-file helpers
(``load_spec`` / ``save_spec``) that let scenarios live in JSON (or,
with PyYAML installed, YAML) files.

All of them are thin layers over :class:`~repro.api.session.Session`;
pass your own ``session=`` to amortise network/oracle preparation
across calls, otherwise each call uses a fresh one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from ..exceptions import ConfigurationError
from ..experiments.runner import ALGORITHMS
from ..simulation.hooks import SimulationHooks
from .session import RunResult, Session
from .spec import ScenarioSpec


def run_scenario(
    spec: ScenarioSpec,
    *,
    hooks: SimulationHooks | None = None,
    session: Session | None = None,
    trace_path: str | Path | None = None,
) -> RunResult:
    """Execute one scenario (``spec.algorithm``) and return its result.

    ``trace_path`` streams the run's events — the run-start spec echo,
    every arrival/check/assignment, and the run-end summary — to a
    JSONL file through :class:`repro.serve.sinks.JsonlSink`, alongside
    any ``hooks`` the caller passes; it is the one-call version of the
    trace files the serving layer writes per run.
    """
    if trace_path is None:
        return (session or Session()).run(spec, hooks=hooks)
    from ..serve.sinks import JsonlSink
    from ..simulation.hooks import CompositeHooks

    with JsonlSink(trace_path) as sink:
        combined: SimulationHooks = (
            sink if hooks is None else CompositeHooks([hooks, sink])
        )
        return (session or Session()).run(spec, hooks=combined)


def compare(
    spec: ScenarioSpec,
    algorithms: Sequence[str] = ALGORITHMS,
    *,
    use_rl: bool | None = None,
    hooks: SimulationHooks | None = None,
    session: Session | None = None,
) -> list[RunResult]:
    """Run several algorithms over the scenario's one shared workload.

    ``use_rl=None`` (default) keeps the spec's own setting; pass a
    boolean to override it for this comparison only.
    """
    return (session or Session()).compare(
        spec, algorithms=algorithms, use_rl=use_rl, hooks=hooks
    )


@dataclass(frozen=True)
class SweepPoint:
    """One parameter value of a sweep and the runs measured there."""

    parameter: str
    value: Any
    results: tuple[RunResult, ...]


def sweep(
    spec: ScenarioSpec,
    parameter: str,
    values: Sequence[Any],
    *,
    algorithms: Sequence[str] | None = None,
    use_rl: bool | None = None,
    session: Session | None = None,
    spec_for_value: Callable[[ScenarioSpec, Any], ScenarioSpec] | None = None,
) -> list[SweepPoint]:
    """Vary one spec field across ``values``, comparing at every point.

    By default each point runs ``spec.with_overrides(parameter=value)``;
    pass ``spec_for_value`` when a point needs a richer transformation
    (e.g. the capacity sweep also raises ``max_group_size``).  One
    session is shared across the whole sweep, so the road network and
    any heavyweight oracle preprocessing are built once.  ``use_rl``
    follows each point's spec unless overridden with a boolean.
    """
    session = session or Session()
    algorithms = tuple(algorithms) if algorithms else (spec.algorithm,)
    points: list[SweepPoint] = []
    for value in values:
        if spec_for_value is not None:
            point_spec = spec_for_value(spec, value)
        else:
            point_spec = spec.with_overrides(**{parameter: value})
        results = session.compare(point_spec, algorithms=algorithms, use_rl=use_rl)
        points.append(
            SweepPoint(parameter=parameter, value=value, results=tuple(results))
        )
    return points


# ----------------------------------------------------------------------
# spec files
# ----------------------------------------------------------------------
def load_spec(path: str | Path) -> ScenarioSpec:
    """Read a scenario file (JSON; YAML when PyYAML is installed).

    The document must be a flat mapping of :class:`ScenarioSpec`
    fields; unknown keys and invalid values fail with the spec's
    precise errors, naming the file.
    """
    file_path = Path(path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read scenario file {path}: {exc}")
    if file_path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml  # type: ignore[import-not-found]
        except ImportError:
            raise ConfigurationError(
                f"{path} is a YAML scenario file but PyYAML is not "
                f"installed; rewrite the spec as JSON or install pyyaml"
            )
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"scenario file {path} is not valid JSON: {exc}")
    try:
        return ScenarioSpec.from_dict(data)
    except ConfigurationError as exc:
        raise ConfigurationError(f"scenario file {path}: {exc}") from exc


def save_spec(spec: ScenarioSpec, path: str | Path) -> Path:
    """Write a scenario to a JSON spec file (round-trips via load_spec)."""
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    file_path.write_text(json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n")
    return file_path
