"""``repro.api`` — the single programmatic front door of the reproduction.

Everything a consumer needs to describe, execute and observe scenarios
lives behind this package:

* :class:`ScenarioSpec` — a declarative, serializable description of
  one scenario (network source, workload source, fleet and workload
  shape, dispatcher, oracle backend + options, parallelism), valid
  JSON/YAML-file material via ``to_dict``/``from_dict`` and
  :func:`load_spec`/:func:`save_spec`;
* :class:`Session` — a reusable execution context that prepares the
  road network and the distance oracle **once** and runs many
  scenarios against them, persisting CH preprocessing to an on-disk
  cache (``oracle_cache_dir``) keyed by a stable graph hash;
* :class:`RunResult` — structured output (metrics, per-order outcomes,
  oracle statistics, timings, spec echo, graph hash);
* :class:`SimulationHooks` — the event-hook protocol
  (``on_order_arrival`` / ``on_periodic_check`` / ``on_assign``) for
  streaming engine state without forking the loop;
* :func:`run_scenario` / :func:`compare` / :func:`sweep` — the
  one-call verbs the CLI and the experiment harness are built on.

Quick start::

    from repro.api import ScenarioSpec, Session

    spec = ScenarioSpec(dataset="CDC", num_orders=300, num_workers=30,
                        oracle_backend="ch", oracle_cache_dir=".oracle-cache")
    session = Session()
    result = session.run(spec)                     # one algorithm
    table = session.compare(spec, algorithms=("WATTER-expect", "GDP"))
    print(result.metrics.service_rate, result.graph_hash[:12])

The curated re-exports below (demand-model classes, CSV helpers,
reporting, the learning stack) make ``repro.api`` a sufficient import
surface for every bundled example.
"""

from ..config import LearningConfig
from ..core.state import StateEncoder
from ..core.strategies import ConstantThresholdProvider, ThresholdProvider
from ..core.threshold import ThresholdOptimizer, fit_extra_time_distribution
from ..datasets.io import (
    orders_from_csv,
    orders_to_csv,
    workers_from_csv,
    workers_to_csv,
)
from ..datasets.synthetic import CityModel, DemandHotspot, PeakPeriod, Workload
from ..experiments.reporting import format_comparison_table
from ..experiments.runner import ALGORITHMS
from ..learning.trainer import ValueFunctionTrainer, generate_experience
from ..network.generators import grid_city, manhattan_like_city, radial_city
from ..network.grid import GridIndex
from ..network.oracle import available_backends, graph_signature
from ..simulation.hooks import CompositeHooks, SimulationHooks
from .facade import SweepPoint, compare, load_spec, run_scenario, save_spec, sweep
from .session import RunResult, Session
from .spec import NETWORK_SOURCES, WORKLOAD_SOURCES, OracleSpec, ScenarioSpec

__all__ = [
    # the facade proper
    "ScenarioSpec",
    "OracleSpec",
    "Session",
    "RunResult",
    "SimulationHooks",
    "CompositeHooks",
    "SweepPoint",
    "run_scenario",
    "compare",
    "sweep",
    "load_spec",
    "save_spec",
    "NETWORK_SOURCES",
    "WORKLOAD_SOURCES",
    "ALGORITHMS",
    "available_backends",
    "graph_signature",
    # curated re-exports for notebooks and the bundled examples
    "CityModel",
    "DemandHotspot",
    "PeakPeriod",
    "Workload",
    "orders_to_csv",
    "orders_from_csv",
    "workers_to_csv",
    "workers_from_csv",
    "format_comparison_table",
    "grid_city",
    "manhattan_like_city",
    "radial_city",
    "GridIndex",
    "StateEncoder",
    "LearningConfig",
    "ThresholdProvider",
    "ConstantThresholdProvider",
    "ThresholdOptimizer",
    "fit_extra_time_distribution",
    "ValueFunctionTrainer",
    "generate_experience",
]
