"""Road-network substrate: graphs, shortest paths, spatial indexing."""

from .coarsen import (
    CoarseningHierarchy,
    MultilevelCoarsener,
    OverlayOracle,
    coarsening_contraction_order,
)
from .graph import RoadNetwork, build_network
from .grid import GridIndex
from .generators import (
    grid_city,
    manhattan_like_city,
    radial_city,
    example_network,
)
from .oracle import (
    CHOracle,
    DistanceOracle,
    LandmarkOracle,
    LazyDijkstraOracle,
    MatrixOracle,
    OracleStats,
    available_backends,
    configure_oracle,
    create_oracle,
    register_oracle,
)

__all__ = [
    "RoadNetwork",
    "build_network",
    "GridIndex",
    "grid_city",
    "manhattan_like_city",
    "radial_city",
    "example_network",
    "CHOracle",
    "CoarseningHierarchy",
    "DistanceOracle",
    "LazyDijkstraOracle",
    "LandmarkOracle",
    "MatrixOracle",
    "MultilevelCoarsener",
    "OracleStats",
    "OverlayOracle",
    "available_backends",
    "coarsening_contraction_order",
    "configure_oracle",
    "create_oracle",
    "register_oracle",
]
