"""Road-network substrate: graphs, shortest paths, spatial indexing."""

from .graph import RoadNetwork
from .grid import GridIndex
from .generators import (
    grid_city,
    manhattan_like_city,
    radial_city,
    example_network,
)

__all__ = [
    "RoadNetwork",
    "GridIndex",
    "grid_city",
    "manhattan_like_city",
    "radial_city",
    "example_network",
]
