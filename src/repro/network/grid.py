"""Spatial grid index over a road network.

The paper partitions the city into ``n x n`` cells (Section VII-A,
"grid index construction") and uses the cell index both to speed up
worker / rider searches and as the location component of the MDP state
(Section VI-A).  :class:`GridIndex` provides exactly those two services:

* ``cell_of(node)`` — the flat cell index of a node, and
* ``neighbourhood(cell, rings)`` — cells within a Chebyshev radius, used
  to find nearby idle workers without scanning the whole fleet.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from ..exceptions import ConfigurationError, UnknownNodeError
from .graph import RoadNetwork


class GridIndex:
    """Partition of a road network's bounding box into square cells.

    Parameters
    ----------
    network:
        The road network whose nodes are indexed.
    size:
        Number of cells along each axis (the paper's default is 10).
    """

    def __init__(self, network: RoadNetwork, size: int = 10) -> None:
        if size <= 0:
            raise ConfigurationError("grid size must be positive")
        self._network = network
        self._size = size
        min_x, min_y, max_x, max_y = network.bounding_box()
        # Guard against degenerate (single-point) networks: use a unit span.
        self._min_x = min_x
        self._min_y = min_y
        self._span_x = (max_x - min_x) or 1.0
        self._span_y = (max_y - min_y) or 1.0
        self._node_cell: dict[int, int] = {}
        self._cell_nodes: dict[int, list[int]] = defaultdict(list)
        for node in network.nodes():
            x, y = network.coordinates(node)
            cell = self._cell_for_xy(x, y)
            self._node_cell[node] = cell
            self._cell_nodes[cell].append(node)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of cells along one axis."""
        return self._size

    @property
    def num_cells(self) -> int:
        """Total number of cells (``size * size``)."""
        return self._size * self._size

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cell_of(self, node_id: int) -> int:
        """Flat cell index of a node."""
        try:
            return self._node_cell[node_id]
        except KeyError as exc:
            raise UnknownNodeError(node_id) from exc

    def cell_of_xy(self, x: float, y: float) -> int:
        """Flat cell index of an arbitrary coordinate (clamped to bounds)."""
        return self._cell_for_xy(x, y)

    def nodes_in_cell(self, cell: int) -> list[int]:
        """Node ids located in a cell (possibly empty)."""
        return list(self._cell_nodes.get(cell, ()))

    def cell_coordinates(self, cell: int) -> tuple[int, int]:
        """Return the ``(row, column)`` of a flat cell index."""
        if not 0 <= cell < self.num_cells:
            raise ConfigurationError(f"cell {cell} outside grid of size {self._size}")
        return divmod(cell, self._size)

    def ring(self, cell: int, radius: int) -> Iterator[int]:
        """Yield the cells at exactly Chebyshev distance ``radius``.

        This is the single source of the grid's ring geometry; the
        worker spatial index and :meth:`neighbourhood` both build on it.
        """
        row, col = self.cell_coordinates(cell)
        size = self._size
        if radius == 0:
            yield cell
            return
        for dr in range(-radius, radius + 1):
            r = row + dr
            if not 0 <= r < size:
                continue
            if abs(dr) == radius:
                # Top and bottom edges of the ring: full rows.
                for dc in range(-radius, radius + 1):
                    c = col + dc
                    if 0 <= c < size:
                        yield r * size + c
            else:
                # Left and right edges only.
                for dc in (-radius, radius):
                    c = col + dc
                    if 0 <= c < size:
                        yield r * size + c

    def neighbourhood(self, cell: int, rings: int = 1) -> Iterator[int]:
        """Yield the cells within ``rings`` Chebyshev distance of ``cell``.

        The cell itself is yielded first, then the surrounding rings, so
        a caller scanning for the nearest worker can stop early.
        """
        for radius in range(rings + 1):
            yield from self.ring(cell, radius)

    def cells_of(self, nodes: Iterable[int]) -> list[int]:
        """Vector form of :meth:`cell_of`."""
        return [self.cell_of(node) for node in nodes]

    def density(self, nodes: Iterable[int]) -> list[int]:
        """Histogram of how many of ``nodes`` fall in each cell.

        Used for the demand / supply distribution vectors of the MDP
        state (Section VI-A).
        """
        counts = [0] * self.num_cells
        for node in nodes:
            counts[self.cell_of(node)] += 1
        return counts

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cell_for_xy(self, x: float, y: float) -> int:
        col = int((x - self._min_x) / self._span_x * self._size)
        row = int((y - self._min_y) / self._span_y * self._size)
        col = min(max(col, 0), self._size - 1)
        row = min(max(row, 0), self._size - 1)
        return row * self._size + col
