"""Backend registry: names -> oracle factories, plus config-driven setup.

The registry is what makes backends swappable without touching any
dispatcher code: ``SimulationConfig.oracle_backend`` (or the CLI's
``--oracle`` flag) names a backend, and :func:`configure_oracle` builds
and attaches it to the workload's :class:`RoadNetwork` before the run
starts.  Five backends are built in — ``lazy``, ``landmark``,
``matrix``, the contraction-hierarchy ``ch`` and the coarsening-based
``overlay`` — and libraries embedding the reproduction can plug in
their own (e.g. an osmnx/igraph-backed oracle for real map extracts)
via :func:`register_oracle`.
"""

from __future__ import annotations

from typing import Callable, Iterable, TYPE_CHECKING

import networkx as nx

from ...exceptions import ConfigurationError
from ...resilience.degradation import DegradationLog
from ...resilience.faults import fault_point
from .base import DistanceOracle
from .ch import DEFAULT_BUCKET_CACHE_SIZE, DEFAULT_WITNESS_HOP_LIMIT, CHOracle
from .csr import resolve_kernel
from .landmark import DEFAULT_NUM_LANDMARKS, LandmarkOracle
from .lazy import DEFAULT_MAX_SOURCES, LazyDijkstraOracle
from .matrix import MatrixOracle

if TYPE_CHECKING:  # pragma: no cover
    from ...config import SimulationConfig
    from ..graph import RoadNetwork

#: Factory signature: (graph, **options) -> DistanceOracle.  Factories
#: must tolerate the uniform option names produced by
#: :func:`configure_oracle` (``nodes``, ``cache_size``,
#: ``reverse_cache_size``, ``num_landmarks``, ``witness_hop_limit``,
#: ``cache_dir``, ``seed``, ``degradations``) and ignore the ones they
#: do not use.
OracleFactory = Callable[..., DistanceOracle]


def _make_lazy(graph: nx.DiGraph, **options) -> LazyDijkstraOracle:
    return LazyDijkstraOracle(
        graph,
        max_sources=options.get("cache_size", DEFAULT_MAX_SOURCES),
        max_targets=options.get("reverse_cache_size"),
    )


def _make_landmark(graph: nx.DiGraph, **options) -> LandmarkOracle:
    return LandmarkOracle(
        graph,
        num_landmarks=options.get("num_landmarks", DEFAULT_NUM_LANDMARKS),
        seed=options.get("seed", 0),
    )


def _make_matrix(graph: nx.DiGraph, **options) -> MatrixOracle:
    return MatrixOracle(
        graph,
        nodes=options.get("nodes"),
        kernel=options.get("kernel", "auto"),
    )


class _CHCacheAttempt:
    """Mutable accounting of one ``_make_ch`` disk-cache interaction."""

    def __init__(self) -> None:
        self.load_failures = 0
        self.corrupt = False
        self.cache_hit = False
        self.lock_timed_out = False
        self.lock_took_over_stale = False


def _ch_from_cache(
    graph: nx.DiGraph, path, hop_limit: int, kwargs: dict, attempt: _CHCacheAttempt
) -> CHOracle | None:
    """One validating load attempt, folded into ``attempt``'s accounting."""
    from .cache import load_ch_preprocessing_outcome, quarantine_cache_file

    outcome = load_ch_preprocessing_outcome(path, graph, hop_limit)
    attempt.load_failures += outcome.load_failures
    attempt.corrupt = attempt.corrupt or outcome.corrupt
    if outcome.payload is None:
        return None
    try:
        oracle = CHOracle(graph, preprocessing=outcome.payload, **kwargs)
    except ValueError:
        # Parsed but semantically unusable: quarantine like any other
        # rotten payload and rebuild.
        attempt.load_failures += 1
        attempt.corrupt = True
        quarantine_cache_file(path)
        return None
    attempt.cache_hit = True
    return oracle


def _ch_build_and_save(
    graph: nx.DiGraph,
    path,
    kwargs: dict,
    degradations: DegradationLog | None,
) -> CHOracle:
    """Contract from scratch and persist the products (best effort)."""
    from .cache import save_ch_preprocessing

    fault_point("oracle.ch.build")
    oracle = CHOracle(graph, **kwargs)
    try:
        save_ch_preprocessing(path, oracle, graph)
    except OSError as exc:
        # Best effort: a run never fails because its cache could
        # not be written — but the miss is recorded.
        if degradations is not None:
            degradations.record(
                "oracle.cache",
                "persist",
                "skip",
                f"CH cache save failed after retries: {exc}",
            )
    return oracle


def _make_ch(graph: nx.DiGraph, **options) -> CHOracle:
    hop_limit = options.get("witness_hop_limit", DEFAULT_WITNESS_HOP_LIMIT)
    degradations: DegradationLog | None = options.get("degradations")
    kwargs = dict(
        witness_hop_limit=hop_limit,
        bucket_cache_size=options.get("cache_size", DEFAULT_BUCKET_CACHE_SIZE),
        seed=options.get("seed", 0),
        kernel=options.get("kernel", "auto"),
    )
    order_strategy = options.get("contraction_order", "edge_difference")
    variant = ""
    if order_strategy != "edge_difference":
        # Deferred import: coarsen imports the registry back (for the
        # overlay's inner oracle), so a top-level import would cycle.
        from ..coarsen import CONTRACTION_ORDERS, coarsening_contraction_order

        if order_strategy not in CONTRACTION_ORDERS:
            raise ConfigurationError(
                f"unknown contraction_order {order_strategy!r}; "
                f"available: {CONTRACTION_ORDERS}"
            )
        levels = options.get("coarsen_levels")
        order_kwargs = {} if levels is None else {"levels": levels}
        for name, key in (
            ("alpha", "coarsen_alpha"),
            ("beta", "coarsen_beta"),
        ):
            if options.get(key) is not None:
                order_kwargs[name] = options[key]
        # Computed eagerly even when the disk cache may hit: CHOracle
        # ignores ``node_order`` when restoring from ``preprocessing``,
        # and the cache file is keyed per order strategy (``variant``)
        # so the two strategies never satisfy each other's loads.
        kwargs["node_order"] = coarsening_contraction_order(
            graph, **order_kwargs
        )
        variant = "co" if levels is None else f"co{levels}"
    cache_dir = options.get("cache_dir")
    if not cache_dir:
        fault_point("oracle.ch.build")
        oracle = CHOracle(graph, **kwargs)
        oracle.contraction_order = order_strategy
        return oracle
    # Disk-backed preprocessing: a warm cache directory lets this (and
    # every later) process skip the contraction pass entirely.  A stale
    # or corrupted payload yields a miss (rotten files are quarantined
    # to <name>.corrupt by the cache layer), in which case the graph is
    # contracted from scratch and the file rewritten.  A corrupt cache
    # therefore costs one rebuild — it never changes the backend.
    from ...durability.locks import InterProcessLock, LockTimeout
    from .cache import ch_cache_path

    path = ch_cache_path(cache_dir, graph, hop_limit, variant=variant)
    attempt = _CHCacheAttempt()
    # Fast path first, entirely lock-free: readers of a warm cache never
    # contend with each other (or with anyone) — the payload file is
    # only ever replaced atomically, so a validating load either sees a
    # complete payload or misses.
    oracle = _ch_from_cache(graph, path, hop_limit, kwargs, attempt)
    if oracle is None:
        # Build under a cross-process lock so N processes sharing one
        # cache directory contract the graph exactly once: the winner
        # builds and saves, the losers block and then warm-load what the
        # winner persisted (the second load below).
        lock = InterProcessLock(
            path.with_name(path.name + ".lock"),
            timeout=options.get("lock_timeout", 600.0),
        )
        try:
            with lock:
                attempt.lock_took_over_stale = lock.took_over_stale
                oracle = _ch_from_cache(graph, path, hop_limit, kwargs, attempt)
                if oracle is None:
                    oracle = _ch_build_and_save(
                        graph, path, kwargs, degradations
                    )
        except (LockTimeout, OSError) as exc:
            # Availability over the exactly-once economy: a wedged (or
            # glacial) holder — or a lock file that cannot even be
            # created (permissions, injected ``cache.lock`` faults) —
            # must not keep this process from serving.  Build locally
            # without the lock and record the fallback.
            attempt.lock_timed_out = True
            if degradations is not None:
                degradations.record(
                    "cache.lock",
                    "locked-build",
                    "unlocked-rebuild",
                    f"CH cache lock not acquired ({exc}); contracting "
                    f"locally without cross-process exclusion",
                )
            oracle = _ch_build_and_save(graph, path, kwargs, degradations)
    if attempt.corrupt and degradations is not None:
        degradations.record(
            "oracle.cache",
            "persisted-preprocessing",
            "rebuild",
            f"corrupt CH cache file {path.name!r} quarantined; "
            f"re-contracting from scratch",
        )
    oracle.cache_load_failures = attempt.load_failures
    oracle.cache_hit = attempt.cache_hit
    oracle.cache_lock_timed_out = attempt.lock_timed_out
    oracle.cache_lock_took_over_stale = attempt.lock_took_over_stale
    oracle.contraction_order = order_strategy
    return oracle


def _make_overlay(graph: nx.DiGraph, **options) -> DistanceOracle:
    """Coarsen (or load a cached hierarchy), then stand up the overlay.

    The hierarchy persists in the same cache directory as the CH
    preprocessing, keyed by the full graph's signature plus the
    coarsening parameters; the inner coarse-graph oracle additionally
    reuses the CH cache keyed by the *coarse* graph's signature, so a
    warm directory makes overlay readiness almost free.
    """
    # Deferred import: the overlay builds its inner oracle through
    # this registry, so a top-level import would be circular.
    from ..coarsen import (
        DEFAULT_ALPHA,
        DEFAULT_BETA,
        DEFAULT_ERROR_BOUND,
        DEFAULT_LEVELS,
        DEFAULT_STOP_RATIO,
        CoarseningParams,
        MultilevelCoarsener,
        OverlayOracle,
        coarsen_cache_path,
        load_hierarchy,
        save_hierarchy,
    )

    degradations: DegradationLog | None = options.get("degradations")
    levels = options.get("coarsen_levels", DEFAULT_LEVELS)
    alpha = options.get("coarsen_alpha", DEFAULT_ALPHA)
    beta = options.get("coarsen_beta", DEFAULT_BETA)
    params = CoarseningParams(
        levels=levels, alpha=alpha, beta=beta, stop_ratio=DEFAULT_STOP_RATIO
    )
    cache_dir = options.get("cache_dir")
    hierarchy = None
    path = None
    if cache_dir:
        path = coarsen_cache_path(cache_dir, graph, params)
        hierarchy = load_hierarchy(path, graph, params)
    from_cache = hierarchy is not None
    if hierarchy is None:
        fault_point("oracle.coarsen.build")
        hierarchy = MultilevelCoarsener(
            graph,
            levels=levels,
            alpha=alpha,
            beta=beta,
            stop_ratio=DEFAULT_STOP_RATIO,
        ).build()
        if path is not None:
            try:
                save_hierarchy(path, hierarchy, graph)
            except OSError as exc:
                # Best effort, like the CH cache: a run never fails
                # because its hierarchy could not be persisted.
                if degradations is not None:
                    degradations.record(
                        "oracle.cache",
                        "persist",
                        "skip",
                        f"coarsening cache save failed after retries: {exc}",
                    )
    oracle = OverlayOracle(
        graph,
        hierarchy=hierarchy,
        error_bound=options.get("coarsen_error_bound", DEFAULT_ERROR_BOUND),
        refine=options.get("coarsen_refine", False),
        cache_size=options.get("cache_size"),
        witness_hop_limit=options.get("witness_hop_limit"),
        cache_dir=cache_dir,
        kernel=options.get("kernel"),
        seed=options.get("seed", 0),
    )
    oracle.hierarchy_from_cache = from_cache
    return oracle


ORACLE_BACKENDS: dict[str, OracleFactory] = {
    "lazy": _make_lazy,
    "landmark": _make_landmark,
    "matrix": _make_matrix,
    "ch": _make_ch,
    "overlay": _make_overlay,
}


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(ORACLE_BACKENDS))


def register_oracle(name: str, factory: OracleFactory) -> None:
    """Register (or replace) a distance-oracle backend under ``name``."""
    if not name or not isinstance(name, str):
        raise ConfigurationError("oracle backend name must be a non-empty string")
    ORACLE_BACKENDS[name] = factory


def create_oracle(
    name: str,
    graph: nx.DiGraph,
    *,
    nodes: Iterable[int] | None = None,
    cache_size: int | None = None,
    reverse_cache_size: int | None = None,
    num_landmarks: int | None = None,
    witness_hop_limit: int | None = None,
    cache_dir: str | None = None,
    seed: int = 0,
    kernel: str | None = None,
    coarsen_levels: int | None = None,
    coarsen_alpha: float | None = None,
    coarsen_beta: float | None = None,
    coarsen_error_bound: float | None = None,
    coarsen_refine: bool | None = None,
    contraction_order: str | None = None,
    degradations: DegradationLog | None = None,
) -> DistanceOracle:
    """Instantiate a registered backend over ``graph``.

    Unspecified options fall back to the backend's own defaults; options
    a backend has no use for are ignored (a matrix oracle does not care
    about ``num_landmarks``).  ``reverse_cache_size`` bounds the lazy
    backend's per-target reverse distance-map cache (defaults to
    ``cache_size``); ``witness_hop_limit`` caps the witness searches of
    the contraction-hierarchy backend's preprocessing; ``cache_dir``
    points the ``ch`` backend at an on-disk preprocessing cache keyed by
    a stable graph hash (see :mod:`repro.network.oracle.cache`), so warm
    directories skip the contraction pass.  The ``coarsen_*`` options
    shape the ``overlay`` backend's hierarchy and certified error bound
    (``coarsen_levels``/``coarsen_alpha``/``coarsen_beta`` also shape
    the ``ch`` backend's coarsening-derived order when
    ``contraction_order="coarsening"``).  ``degradations`` is the
    run's :class:`~repro.resilience.degradation.DegradationLog`;
    factories record recoverable fallbacks (corrupt cache -> rebuild,
    failed save -> skip) into it.
    """
    try:
        factory = ORACLE_BACKENDS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown oracle backend {name!r}; available: {available_backends()}"
        ) from exc
    options = {"nodes": nodes, "seed": seed}
    if cache_size is not None:
        options["cache_size"] = cache_size
    if reverse_cache_size is not None:
        options["reverse_cache_size"] = reverse_cache_size
    if num_landmarks is not None:
        options["num_landmarks"] = num_landmarks
    if witness_hop_limit is not None:
        options["witness_hop_limit"] = witness_hop_limit
    if cache_dir is not None:
        options["cache_dir"] = cache_dir
    if kernel is not None:
        options["kernel"] = kernel
    if coarsen_levels is not None:
        options["coarsen_levels"] = coarsen_levels
    if coarsen_alpha is not None:
        options["coarsen_alpha"] = coarsen_alpha
    if coarsen_beta is not None:
        options["coarsen_beta"] = coarsen_beta
    if coarsen_error_bound is not None:
        options["coarsen_error_bound"] = coarsen_error_bound
    if coarsen_refine is not None:
        options["coarsen_refine"] = coarsen_refine
    if contraction_order is not None:
        options["contraction_order"] = contraction_order
    if degradations is not None:
        options["degradations"] = degradations
    return factory(graph, **options)


def configure_oracle(
    network: "RoadNetwork",
    config: "SimulationConfig",
    nodes: Iterable[int] | None = None,
    reuse: bool = True,
    degradations: DegradationLog | None = None,
) -> DistanceOracle:
    """Build the backend named by ``config`` and attach it to ``network``.

    Parameters
    ----------
    network:
        The road network whose queries should go through the backend.
    config:
        Supplies ``oracle_backend``, ``oracle_cache_size``,
        ``oracle_landmarks`` and ``seed``.
    nodes:
        Active-node hint for precomputing backends (pickup/dropoff and
        worker nodes of the workload about to run).
    reuse:
        When true (default) an already attached oracle of the requested
        backend *and settings* is kept, so several runs over one
        workload share warm caches — mirroring how the seed shared one
        Dijkstra cache.  An attached oracle whose settings differ from
        the config (e.g. a different ``oracle_cache_size``) is rebuilt.
    degradations:
        The run's degradation log.  When the requested backend's
        *construction itself* fails (not a config error — e.g. CH
        contraction dying on a pathological graph), the always-buildable
        ``lazy`` backend is attached instead and the fallback recorded;
        without a log, the construction error propagates unchanged.

    A degraded stand-in stays sticky: the fallback oracle is tagged
    with ``degraded_from`` so later ``reuse=True`` calls for the failed
    backend keep it instead of re-running the failing build every time.
    """
    current = network.oracle
    if (
        reuse
        and current.name == config.oracle_backend
        and _options_match(current, config)
    ):
        return current
    if reuse and getattr(current, "degraded_from", None) == config.oracle_backend:
        # The attached oracle is the recorded stand-in for the backend
        # this config asks for — rebuilding would rerun the failing
        # construction on every request.
        return current
    try:
        oracle = create_oracle(
            config.oracle_backend,
            network.graph,
            nodes=nodes,
            cache_size=config.oracle_cache_size,
            num_landmarks=config.oracle_landmarks,
            witness_hop_limit=config.oracle_witness_hops,
            cache_dir=config.oracle_cache_dir,
            seed=config.seed,
            kernel=getattr(config, "oracle_kernel", None),
            coarsen_levels=getattr(config, "oracle_coarsen_levels", None),
            coarsen_alpha=getattr(config, "oracle_coarsen_alpha", None),
            coarsen_beta=getattr(config, "oracle_coarsen_beta", None),
            coarsen_error_bound=getattr(
                config, "oracle_coarsen_error_bound", None
            ),
            coarsen_refine=getattr(config, "oracle_coarsen_refine", None),
            contraction_order=getattr(
                config, "oracle_contraction_order", None
            ),
            degradations=degradations,
        )
    except ConfigurationError:
        raise
    except Exception as exc:  # noqa: BLE001 - degrade, record, keep serving
        if degradations is None or config.oracle_backend == "lazy":
            raise
        degradations.record(
            "oracle.backend",
            config.oracle_backend,
            "lazy",
            f"{config.oracle_backend!r} oracle construction failed "
            f"({type(exc).__name__}: {exc}); serving exact answers from "
            f"the lazy backend",
        )
        oracle = create_oracle(
            "lazy",
            network.graph,
            nodes=nodes,
            cache_size=config.oracle_cache_size,
            seed=config.seed,
        )
        oracle.degraded_from = config.oracle_backend  # type: ignore[attr-defined]
    network.set_oracle(oracle)
    return oracle


def _options_match(oracle: DistanceOracle, config: "SimulationConfig") -> bool:
    """Whether an attached oracle already honours the config's settings.

    Only the knobs a backend actually consumes are compared; custom
    registry backends (whose options the registry cannot know) match on
    name alone.
    """
    if isinstance(oracle, LazyDijkstraOracle):
        return oracle.cache_info().maxsize == config.oracle_cache_size
    if isinstance(oracle, LandmarkOracle):
        return oracle.requested_landmarks == config.oracle_landmarks
    wanted_kernel = resolve_kernel(getattr(config, "oracle_kernel", "auto"))
    if isinstance(oracle, CHOracle):
        return (
            oracle.witness_hop_limit == config.oracle_witness_hops
            and oracle.bucket_cache_size == config.oracle_cache_size
            and oracle.kernel == wanted_kernel
            and getattr(oracle, "contraction_order", "edge_difference")
            == getattr(config, "oracle_contraction_order", "edge_difference")
        )
    if isinstance(oracle, MatrixOracle):
        return oracle.kernel == wanted_kernel
    from ..coarsen.overlay import OverlayOracle

    if isinstance(oracle, OverlayOracle):
        return (
            oracle.coarsen_levels
            == getattr(config, "oracle_coarsen_levels", oracle.coarsen_levels)
            and oracle.coarsen_alpha
            == getattr(config, "oracle_coarsen_alpha", oracle.coarsen_alpha)
            and oracle.coarsen_beta
            == getattr(config, "oracle_coarsen_beta", oracle.coarsen_beta)
            and oracle.error_bound
            == getattr(config, "oracle_coarsen_error_bound", oracle.error_bound)
            and oracle.refine_mode
            == getattr(config, "oracle_coarsen_refine", oracle.refine_mode)
            and oracle.kernel == wanted_kernel
        )
    return True
