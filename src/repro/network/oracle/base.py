"""Distance-oracle abstraction for shortest travel-time queries.

Every algorithm in the reproduction bottoms out in "how long does it
take to drive from node a to node b?".  The answer can be produced in
several ways with very different cost profiles:

* run Dijkstra on demand and cache the result (cheap setup, expensive
  cold queries),
* precompute auxiliary data (landmarks, dense matrices) and answer
  point-to-point queries in sub-linear or constant time (expensive
  setup, very cheap queries).

:class:`DistanceOracle` is the interface that hides this choice from the
routing, pooling and dispatching layers.  Backends register themselves
in :mod:`repro.network.oracle.registry` and are selected through
``SimulationConfig.oracle_backend`` (or the ``--oracle`` CLI flag)
without touching any dispatcher code.

All oracles answer in *seconds of travel time* on the directed graph
they were built over, raise :class:`~repro.exceptions.UnreachableError`
for disconnected pairs, and keep uniform query/cache counters so the
metrics layer can report how the hot path behaved.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, NamedTuple

import networkx as nx

from ...exceptions import UnreachableError


#: Version of the flat oracle-stats schema produced by
#: :meth:`OracleStats.as_dict` (surfaced as ``SimulationMetrics.
#: oracle_stats``, the compare table and the serve layer's
#: ``/metrics``).  The schema is: the common core keys every backend
#: fills (``schema_version``, ``backend``, ``kernel``, ``queries``,
#: ``batched_queries``, ``cache_hits``, ``cache_misses``, ``hit_rate``,
#: ``sssp_runs``, ``reverse_sssp_runs``, ``pp_searches``,
#: ``evictions``, ``precompute_seconds``) plus backend extras
#: namespaced as ``"<backend>.<key>"`` (e.g. ``ch.bucket_scans``,
#: ``matrix.matrix_rows``) so two backends can never collide and a
#: reader can tell core from backend-specific at a glance.  Bump this
#: whenever a core key changes meaning or shape.
STATS_SCHEMA_VERSION = 1

#: ``OracleStats.extras`` keys that are monotone counters, subtracted by
#: snapshot deltas like the uniform counters.  Everything else in extras
#: is a gauge or a structural constant and is reported as-is.
COUNTER_EXTRAS = frozenset({"matrix_refreshes", "upward_settles", "bucket_scans"})


class CacheInfo(NamedTuple):
    """``functools.lru_cache``-style cache summary for an oracle."""

    hits: int
    misses: int
    maxsize: int | None
    currsize: int


@dataclass(frozen=True)
class OracleStats:
    """Uniform query counters every backend maintains.

    Attributes
    ----------
    backend:
        Registry name of the backend that produced the numbers.
    queries:
        Point-to-point ``travel_time`` answers served (including the
        pairs answered through ``travel_times_many``).
    batched_queries:
        Pairs answered through the batched ``travel_times_many`` API.
    cache_hits / cache_misses:
        Whether an answer came from precomputed/cached state or had to
        run graph search work.
    sssp_runs:
        Full single-source Dijkstra executions (setup and refresh work
        included).
    reverse_sssp_runs:
        Dijkstra executions on the *reversed* graph — the many-to-one
        batching primitive (one reverse run from a target answers every
        source at once).
    pp_searches:
        Goal-directed point-to-point searches (A*/bidirectional runs).
    evictions:
        Cache entries dropped by an LRU bound.
    precompute_seconds:
        Wall-clock time spent building auxiliary structures.
    """

    backend: str = "?"
    kernel: str = "dict"
    queries: int = 0
    batched_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    sssp_runs: int = 0
    reverse_sssp_runs: int = 0
    pp_searches: int = 0
    evictions: int = 0
    precompute_seconds: float = 0.0
    extras: Mapping[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered without new graph-search work."""
        total = self.cache_hits + self.cache_misses
        return (self.cache_hits / total) if total else 0.0

    def __sub__(self, earlier: "OracleStats") -> "OracleStats":
        """Counter delta between two snapshots (for per-run accounting).

        Extras listed in :data:`COUNTER_EXTRAS` are deltas like the
        uniform counters; the remaining extras are gauges (cache
        occupancies) or structural constants (shortcut counts, landmark
        counts) whose latest snapshot is the meaningful per-run value.
        """
        extras = dict(self.extras)
        for key in COUNTER_EXTRAS.intersection(extras):
            extras[key] = extras[key] - earlier.extras.get(key, 0.0)
        return replace(
            self,
            queries=self.queries - earlier.queries,
            batched_queries=self.batched_queries - earlier.batched_queries,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            sssp_runs=self.sssp_runs - earlier.sssp_runs,
            reverse_sssp_runs=self.reverse_sssp_runs - earlier.reverse_sssp_runs,
            pp_searches=self.pp_searches - earlier.pp_searches,
            evictions=self.evictions - earlier.evictions,
            extras=extras,
        )

    def as_dict(self) -> dict[str, float | str]:
        """Flat dictionary view: the versioned oracle-stats schema.

        Core keys are uniform across every backend; backend extras are
        namespaced as ``"<backend>.<key>"`` (see
        :data:`STATS_SCHEMA_VERSION` for the full contract).
        """
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "backend": self.backend,
            "kernel": self.kernel,
            "queries": self.queries,
            "batched_queries": self.batched_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "sssp_runs": self.sssp_runs,
            "reverse_sssp_runs": self.reverse_sssp_runs,
            "pp_searches": self.pp_searches,
            "evictions": self.evictions,
            "precompute_seconds": self.precompute_seconds,
            **{f"{self.backend}.{key}": value for key, value in self.extras.items()},
        }


class DistanceOracle(abc.ABC):
    """Answers shortest travel-time queries over a directed road graph.

    Parameters
    ----------
    graph:
        The ``networkx.DiGraph`` whose edges carry ``travel_time``.
        Oracles treat the graph as frozen; mutate it and the oracle's
        answers become stale (call :meth:`clear` after edits).
    """

    #: Registry name; subclasses override.
    name: str = "oracle"

    #: Whether this backend's query methods may be called from several
    #: threads at once.  Most backends memoise on query (LRU caches,
    #: lazily materialised tables) and are **not** safe without external
    #: locking; backends that guard or pre-materialise their mutable
    #: state set this to ``True`` and the parallel dispatch engine then
    #: skips its serialising lock in thread mode.
    thread_safe_queries: bool = False

    def __init__(self, graph: nx.DiGraph) -> None:
        self._graph = graph
        self._reversed_graph: nx.DiGraph | None = None
        self._queries = 0
        self._batched_queries = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._sssp_runs = 0
        self._reverse_sssp_runs = 0
        self._pp_searches = 0
        self._evictions = 0
        self._precompute_seconds = 0.0

    @property
    def graph(self) -> nx.DiGraph:
        """The graph the oracle answers for."""
        return self._graph

    # ------------------------------------------------------------------
    # query interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def travel_time(self, source: int, target: int) -> float:
        """Shortest travel time (seconds) from ``source`` to ``target``.

        Raises :class:`UnreachableError` when no path exists.  Both
        endpoints are assumed to be valid nodes (the owning
        :class:`~repro.network.graph.RoadNetwork` validates ids).
        """

    @abc.abstractmethod
    def travel_times_from(self, source: int) -> Mapping[int, float]:
        """All shortest travel times from ``source`` (reachable targets only)."""

    def travel_times_to(self, target: int) -> Mapping[int, float]:
        """All shortest travel times *to* ``target`` (reaching sources only).

        The many-to-one mirror of :meth:`travel_times_from`: the returned
        mapping is ``source -> d(source, target)`` for every source that
        can reach the target, computed with a single Dijkstra on the
        *reversed* graph.  On directed graphs this is **not** the same as
        ``travel_times_from(target)`` — reverse and forward distances
        differ whenever edges are asymmetric.  Backends override this
        with cached / table-backed implementations.
        """
        self._queries += 1
        return self._dijkstra_to(target)

    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        """Batched travel times over the ``sources x targets`` product.

        Returns a mapping ``(source, target) -> seconds``; unreachable
        pairs are simply absent, so callers can treat a missing key as
        "cannot get there".  Backends override this with bulk-friendly
        implementations (one matrix refresh, one SSSP per source, one
        *reverse* SSSP per target for the many-sources-to-one-target
        dispatch pattern, ...).

        Stats contract for overrides: ``batched_queries`` counts every
        attempted pair of the product, ``queries`` counts the pairs
        actually answered (present in the result).
        """
        source_list = list(dict.fromkeys(sources))
        target_list = list(dict.fromkeys(targets))
        result: dict[tuple[int, int], float] = {}
        if len(target_list) == 1 and len(source_list) > 1:
            # Many-to-one: answer the whole batch from one reverse SSSP.
            # The map fetch is internal to the batch, so whatever query
            # accounting the (possibly overridden) travel_times_to does
            # is rolled back and replaced by the answered-pairs count.
            target = target_list[0]
            self._batched_queries += len(source_list)
            queries_before = self._queries
            arrivals = self.travel_times_to(target)
            self._queries = queries_before
            for source in source_list:
                value = 0.0 if source == target else arrivals.get(source)
                if value is not None:
                    result[(source, target)] = value
            self._queries += len(result)
            return result
        # Per-pair fallback; travel_time's own accounting is replaced by
        # the answered-pairs count so the contract above holds here too.
        queries_before = self._queries
        for source in source_list:
            for target in target_list:
                self._batched_queries += 1
                try:
                    result[(source, target)] = self.travel_time(source, target)
                except UnreachableError:
                    continue
        self._queries = queries_before + len(result)
        return result

    def is_reachable(self, source: int, target: int) -> bool:
        """Whether a path exists from ``source`` to ``target``."""
        try:
            self.travel_time(source, target)
        except UnreachableError:
            return False
        return True

    def shortest_path(self, source: int, target: int) -> list[int] | None:
        """Node sequence of a shortest path, or ``None`` when unsupported.

        Backends that maintain enough structure to reconstruct paths
        (e.g. the contraction-hierarchy backend's shortcut unpacking)
        override this; the default ``None`` tells the owning
        :class:`~repro.network.graph.RoadNetwork` to fall back to a
        plain Dijkstra.  Overrides raise :class:`UnreachableError` for
        disconnected pairs — ``None`` strictly means "not supported".
        """
        return None

    # ------------------------------------------------------------------
    # shared-memory protocol (optional)
    # ------------------------------------------------------------------
    def share_memory(self) -> dict | None:
        """Move shareable prepared state into shared-memory segments.

        Returns a small picklable handle a forked/spawned worker passes
        to :meth:`adopt_shared`, or ``None`` when this backend has
        nothing to share (the default) — callers then fall back to
        fork-inherited private copies.  Implementations must be
        idempotent and must keep answering queries from the shared
        views themselves (one copy of the data, every process attached).
        """
        return None

    def adopt_shared(self, handle) -> None:
        """Attach this oracle to segments described by ``handle`` (no-op default)."""

    def release_shared(self) -> None:
        """Detach from shared state and destroy owned segments (no-op default).

        Only the process that called :meth:`share_memory` destroys
        segments; the implementation restores private copies first so
        the oracle keeps working afterwards.
        """

    # ------------------------------------------------------------------
    # cache management and instrumentation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def clear(self) -> None:
        """Drop cached state (precomputed tables are rebuilt lazily)."""

    @abc.abstractmethod
    def cache_info(self) -> CacheInfo:
        """Summary of the backend's main cache."""

    def stats(self) -> OracleStats:
        """Snapshot of the uniform counters plus backend extras."""
        return OracleStats(
            backend=self.name,
            kernel=getattr(self, "kernel", "dict"),
            queries=self._queries,
            batched_queries=self._batched_queries,
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            sssp_runs=self._sssp_runs,
            reverse_sssp_runs=self._reverse_sssp_runs,
            pp_searches=self._pp_searches,
            evictions=self._evictions,
            precompute_seconds=self._precompute_seconds,
            extras=self._extra_stats(),
        )

    def _extra_stats(self) -> dict[str, float]:
        return {}

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _dijkstra_from(self, source: int) -> dict[int, float]:
        """One single-source Dijkstra in travel-time space (counted)."""
        self._sssp_runs += 1
        return nx.single_source_dijkstra_path_length(
            self._graph, source, weight="travel_time"
        )

    def _dijkstra_to(self, target: int) -> dict[int, float]:
        """One Dijkstra on the reversed graph: ``source -> d(source, target)``.

        This is the reverse-SSSP batching primitive — a single run
        answers every many-to-one distance towards ``target``.
        """
        self._reverse_sssp_runs += 1
        return nx.single_source_dijkstra_path_length(
            self._reverse_graph(), target, weight="travel_time"
        )

    def _reverse_graph(self) -> nx.DiGraph:
        """The reversed graph, materialised once on first use.

        A materialised copy (not a ``reverse(copy=False)`` view) keeps
        reverse Dijkstra as fast as forward; it is dropped by
        :meth:`clear` implementations that call :meth:`_drop_reverse_graph`
        so graph edits do not leave a stale copy behind.
        """
        if self._reversed_graph is None:
            self._reversed_graph = self._graph.reverse(copy=True)
        return self._reversed_graph

    def _drop_reverse_graph(self) -> None:
        self._reversed_graph = None
