"""ALT backend: landmark lower bounds driving bidirectional A*.

The classic ALT technique (Goldberg & Harrelson, "Computing the Shortest
Path: A* Search Meets Graph Theory"):

1. pick ``k`` landmarks spread over the graph (farthest-point selection
   here), and precompute, for every landmark ``l``, the full distance
   vectors ``d(l, .)`` (forward Dijkstra) and ``d(., l)`` (Dijkstra on
   the reversed graph);
2. the triangle inequality then gives, for any pair ``(u, v)``, the
   lower bound ``d(u, v) >= max_l max(d(u,l) - d(v,l), d(l,v) - d(l,u))``;
3. use those bounds as A* potentials for goal-directed point-to-point
   search.

The query here is a *bidirectional* Dijkstra over reduced edge weights:
with the consistent potential ``p(v) = (pi_t(v) - pi_s(v)) / 2`` (where
``pi_t``/``pi_s`` are the ALT bounds towards the target / from the
source) both the forward search from ``s`` and the backward search from
``t`` see the same non-negative reduced weight on every edge, so the
standard bidirectional stopping rule ``top_f + top_b >= mu`` applies and
the true distance is recovered as ``mu + p(s) - p(t)``.

Because the final distance is assembled from two half-paths in reduced
space, results can differ from a monolithic Dijkstra in the last few
ulps; callers that need bitwise identity should use the ``lazy`` or
``matrix`` backends.  A bounded LRU of point-to-point results makes the
heavily repeated queries of the dispatch hot path O(1).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from heapq import heappop, heappush
from typing import Iterable, Mapping

import networkx as nx

from ...exceptions import UnreachableError
from .base import CacheInfo, DistanceOracle

_INF = float("inf")

#: Default number of landmarks (the ALT literature uses 8-16).
DEFAULT_NUM_LANDMARKS = 8

#: Default bound on the point-to-point result cache.
DEFAULT_PAIR_CACHE_SIZE = 200_000

#: Above this many unanswered sources towards one target, a single
#: backward Dijkstra from the target beats per-pair ALT searches.
_MANY_TO_ONE_CUTOFF = 4


class LandmarkOracle(DistanceOracle):
    """Point-to-point oracle using landmark (ALT) bidirectional A*.

    Parameters
    ----------
    graph:
        Directed graph with ``travel_time`` edge weights.
    num_landmarks:
        How many landmarks to select (clamped to the node count).
    pair_cache_size:
        LRU bound on memoised point-to-point results (``None`` =
        unbounded).
    seed:
        Unused today (selection is deterministic farthest-point) but
        kept so configs can thread their seed through uniformly.
    """

    name = "landmark"

    def __init__(
        self,
        graph: nx.DiGraph,
        num_landmarks: int = DEFAULT_NUM_LANDMARKS,
        pair_cache_size: int | None = DEFAULT_PAIR_CACHE_SIZE,
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        if num_landmarks < 1:
            raise ValueError("num_landmarks must be at least 1")
        del seed
        #: The requested landmark count (before clamping to the node
        #: count); used to decide whether a cached oracle can be reused.
        self.requested_landmarks = num_landmarks
        self._pair_cache_size = pair_cache_size
        # `None` marks a memoised *unreachable* verdict.
        self._pair_cache: OrderedDict[tuple[int, int], float | None] = OrderedDict()

        started = time.perf_counter()
        self._nodes: list[int] = sorted(graph.nodes)
        self._index: dict[int, int] = {
            node: idx for idx, node in enumerate(self._nodes)
        }
        n = len(self._nodes)
        # Plain adjacency lists: much faster to scan in the inner loop
        # than networkx's dict-of-dicts.
        self._fwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._rev: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for u, v, data in graph.edges(data=True):
            w = float(data["travel_time"])
            self._fwd[self._index[u]].append((self._index[v], w))
            self._rev[self._index[v]].append((self._index[u], w))

        self._landmarks: list[int] = []  # node indices
        self._dist_from: list[list[float]] = []  # d(landmark, .)
        self._dist_to: list[list[float]] = []  # d(., landmark)
        # ALT bounds are only consistent when every node reaches every
        # landmark and vice versa, i.e. on strongly connected graphs
        # (real road networks are).  Otherwise fall back to zero
        # potentials — plain bidirectional Dijkstra, slower but exact.
        if n > 0 and nx.is_strongly_connected(graph):
            self._select_landmarks(min(num_landmarks, n))
        self._precompute_seconds = time.perf_counter() - started

    @property
    def landmarks(self) -> list[int]:
        """Node ids of the selected landmarks."""
        return [self._nodes[idx] for idx in self._landmarks]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def travel_time(self, source: int, target: int) -> float:
        self._queries += 1
        if source == target:
            return 0.0
        key = (source, target)
        cached = self._pair_cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._cache_hits += 1
            self._pair_cache.move_to_end(key)
            if cached is None:
                raise UnreachableError(source, target)
            return cached
        self._cache_misses += 1
        distance = self._bidirectional_alt(self._index[source], self._index[target])
        self._remember(key, distance)
        if distance is None:
            raise UnreachableError(source, target)
        return distance

    def travel_times_from(self, source: int) -> Mapping[int, float]:
        # Full SSSP is not what this backend is specialised for; answer
        # it directly (uncached) so correctness is preserved.
        self._queries += 1
        return self._dijkstra_from(source)

    def travel_times_to(self, target: int) -> Mapping[int, float]:
        """All travel times to ``target`` via one backward Dijkstra.

        Runs over the reverse adjacency lists that already exist for the
        landmark tables, so no extra precomputation is needed.
        """
        self._queries += 1
        distances = self._sssp(self._index[target], self._rev, reverse=True)
        return {
            self._nodes[idx]: dist
            for idx, dist in enumerate(distances)
            if dist != _INF
        }

    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        """Batched product queries with many-to-one backward batching.

        Pairs already memoised are answered from the pair cache.  When a
        target still has several unanswered sources, one *backward*
        search from the target over the reverse adjacency settles all of
        them together (stopping as soon as the last requested source is
        reached) instead of running one goal-directed ALT search per
        pair; the results are folded back into the pair cache.  Small
        remainders keep using the per-pair ALT search, which explores
        far less of the graph.
        """
        source_list = list(dict.fromkeys(sources))
        target_list = list(dict.fromkeys(targets))
        self._batched_queries += len(source_list) * len(target_list)
        result: dict[tuple[int, int], float] = {}
        for target in target_list:
            pending: list[int] = []
            for source in source_list:
                if source == target:
                    result[(source, target)] = 0.0
                    continue
                key = (source, target)
                cached = self._pair_cache.get(key, _MISSING)
                if cached is not _MISSING:
                    self._cache_hits += 1
                    self._pair_cache.move_to_end(key)
                    if cached is not None:
                        result[key] = cached
                else:
                    pending.append(source)
            if not pending:
                continue
            self._cache_misses += len(pending)
            if len(pending) > _MANY_TO_ONE_CUTOFF:
                found = self._backward_search(target, pending)
                for source in pending:
                    value = found.get(source)
                    self._remember((source, target), value)
                    if value is not None:
                        result[(source, target)] = value
            else:
                for source in pending:
                    distance = self._bidirectional_alt(
                        self._index[source], self._index[target]
                    )
                    self._remember((source, target), distance)
                    if distance is not None:
                        result[(source, target)] = distance
        self._queries += len(result)
        return result

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._pair_cache.clear()

    def cache_info(self) -> CacheInfo:
        return CacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            maxsize=self._pair_cache_size,
            currsize=len(self._pair_cache),
        )

    def _extra_stats(self) -> dict[str, float]:
        return {"landmarks": float(len(self._landmarks))}

    # ------------------------------------------------------------------
    # precomputation
    # ------------------------------------------------------------------
    def _select_landmarks(self, count: int) -> None:
        """Deterministic farthest-point landmark selection.

        The first landmark is the node farthest (by forward distance)
        from the smallest node id; each later landmark maximises its
        minimum distance to the already chosen set.  Unreachable nodes
        never become landmarks of an earlier component's run but still
        get usable (zero) bounds, which only costs tightness, never
        correctness.
        """
        start = 0
        first = self._farthest(self._sssp(start, self._fwd), fallback=start)
        self._add_landmark(first)
        min_dist = list(self._dist_from[0])
        while len(self._landmarks) < count:
            candidate = self._farthest(min_dist, fallback=None)
            if candidate is None or candidate in self._landmarks:
                break
            self._add_landmark(candidate)
            newest = self._dist_from[-1]
            for idx in range(len(min_dist)):
                if newest[idx] < min_dist[idx]:
                    min_dist[idx] = newest[idx]

    def _add_landmark(self, idx: int) -> None:
        self._landmarks.append(idx)
        self._dist_from.append(self._sssp(idx, self._fwd))
        self._dist_to.append(self._sssp(idx, self._rev, reverse=True))

    @staticmethod
    def _farthest(distances: list[float], fallback: int | None) -> int | None:
        best, best_dist = fallback, -1.0
        for idx, dist in enumerate(distances):
            if dist != _INF and dist > best_dist:
                best, best_dist = idx, dist
        return best

    def _sssp(
        self,
        start: int,
        adjacency: list[list[tuple[int, float]]],
        reverse: bool = False,
    ) -> list[float]:
        """Array-based Dijkstra over a plain adjacency list (counted)."""
        if reverse:
            self._reverse_sssp_runs += 1
        else:
            self._sssp_runs += 1
        dist = [_INF] * len(self._nodes)
        dist[start] = 0.0
        heap: list[tuple[float, int]] = [(0.0, start)]
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            for v, w in adjacency[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return dist

    # ------------------------------------------------------------------
    # many-to-one backward search
    # ------------------------------------------------------------------
    def _backward_search(
        self, target: int, source_nodes: list[int]
    ) -> dict[int, float]:
        """Backward Dijkstra from ``target`` settling the given sources.

        Expands the reverse adjacency from the target and stops as soon
        as every requested source is settled; sources that remain
        unsettled once the frontier is exhausted are unreachable.
        Returns ``source node -> d(source, target)`` for the settled
        subset.
        """
        self._reverse_sssp_runs += 1
        remaining = {self._index[node] for node in source_nodes}
        found: dict[int, float] = {}
        start = self._index[target]
        dist = [_INF] * len(self._nodes)
        dist[start] = 0.0
        heap: list[tuple[float, int]] = [(0.0, start)]
        while heap and remaining:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            if u in remaining:
                remaining.discard(u)
                found[self._nodes[u]] = d
            for v, w in self._rev[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return found

    # ------------------------------------------------------------------
    # ALT bidirectional A*
    # ------------------------------------------------------------------
    def _bidirectional_alt(self, s: int, t: int) -> float | None:
        """Bidirectional Dijkstra over reduced weights; ``None`` = unreachable."""
        self._pp_searches += 1
        potential = self._make_potential(s, t)
        p_s, p_t = potential(s), potential(t)

        dist_f: dict[int, float] = {s: 0.0}
        dist_b: dict[int, float] = {t: 0.0}
        heap_f: list[tuple[float, int]] = [(0.0, s)]
        heap_b: list[tuple[float, int]] = [(0.0, t)]
        mu = _INF

        while heap_f and heap_b:
            if heap_f[0][0] + heap_b[0][0] >= mu:
                break
            # Expand the side with the smaller frontier key.
            forward = heap_f[0][0] <= heap_b[0][0]
            heap, dist, other = (
                (heap_f, dist_f, dist_b) if forward else (heap_b, dist_b, dist_f)
            )
            adjacency = self._fwd if forward else self._rev
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            p_u = potential(u)
            for v, w in adjacency[u]:
                p_v = potential(v)
                # Reduced weight; identical for both directions and
                # non-negative by feasibility of the ALT bounds.  Guard
                # against float noise driving it slightly negative.
                reduced = (w - p_u + p_v) if forward else (w - p_v + p_u)
                if reduced < 0.0:
                    reduced = 0.0
                nd = d + reduced
                if nd < dist.get(v, _INF):
                    dist[v] = nd
                    heappush(heap, (nd, v))
                    if v in other:
                        total = nd + other[v]
                        if total < mu:
                            mu = total
        if mu == _INF:
            return None
        # Undo the potential shift: mu = d(s,t) - p(s) + p(t).
        return mu + p_s - p_t

    def _make_potential(self, s: int, t: int):
        """Consistent bidirectional potential ``p(v) = (pi_t(v) - pi_s(v)) / 2``."""
        dist_from, dist_to = self._dist_from, self._dist_to
        from_s = [table[s] for table in dist_from]
        to_s = [table[s] for table in dist_to]
        from_t = [table[t] for table in dist_from]
        to_t = [table[t] for table in dist_to]
        num = len(self._landmarks)
        if num == 0:
            return lambda v: 0.0
        cache: dict[int, float] = {}

        def potential(v: int) -> float:
            value = cache.get(v)
            if value is not None:
                return value
            pi_t = 0.0  # lower bound on d(v, t)
            pi_s = 0.0  # lower bound on d(s, v)
            for lm in range(num):
                d_from_v = dist_from[lm][v]
                d_to_v = dist_to[lm][v]
                # d(v, t) >= d(v, l) - d(t, l) and >= d(l, t) - d(l, v)
                bound = d_to_v - to_t[lm]
                if bound > pi_t and bound != _INF:
                    pi_t = bound
                bound = from_t[lm] - d_from_v
                if bound > pi_t and bound != _INF:
                    pi_t = bound
                # d(s, v) >= d(l, v) - d(l, s) and >= d(s, l) - d(v, l)
                bound = d_from_v - from_s[lm]
                if bound > pi_s and bound != _INF:
                    pi_s = bound
                bound = to_s[lm] - d_to_v
                if bound > pi_s and bound != _INF:
                    pi_s = bound
            value = 0.5 * (pi_t - pi_s)
            cache[v] = value
            return value

        return potential

    # ------------------------------------------------------------------
    # pair-cache internals
    # ------------------------------------------------------------------
    def _remember(self, key: tuple[int, int], distance: float | None) -> None:
        self._pair_cache[key] = distance
        if (
            self._pair_cache_size is not None
            and len(self._pair_cache) > self._pair_cache_size
        ):
            self._pair_cache.popitem(last=False)
            self._evictions += 1


#: Sentinel distinguishing "not cached" from a cached unreachable verdict.
_MISSING = object()
