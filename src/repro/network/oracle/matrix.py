"""Dense many-to-many matrix backend with batched refresh.

Dispatch workloads query travel times between a comparatively small,
slowly growing set of *active* nodes — order pickups/dropoffs and worker
locations — over and over.  ``MatrixOracle`` precomputes one distance
row per active source (a dense ``float64`` vector over *all* nodes, so
any target is an O(1) lookup) and answers every query with two index
lookups.

Sources that were not part of the initial active set are collected and
materialised in *batched refreshes*: a ``travel_times_many`` call with
ten unseen sources triggers one refresh that builds all ten rows, not
ten separate cache misses sprinkled through the hot path.

Memory is ``rows x num_nodes x 8`` bytes — for the city-scale synthetic
networks of this reproduction (hundreds of nodes, hundreds of active
nodes) that is a few megabytes; for very large graphs prefer the
``landmark`` backend.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from typing import Iterable, Mapping

import networkx as nx

# numpy is optional: the dict kernel keeps rows as Python lists
from ...compat import np
from ...exceptions import UnreachableError
from .base import CacheInfo, DistanceOracle
from .csr import SharedArrayPack, resolve_kernel

_INF = float("inf")

#: Bound on memoised reverse arrival maps (each is O(num_nodes)).
DEFAULT_MAX_REVERSE_MAPS = 1024


class MatrixOracle(DistanceOracle):
    """Precomputed distance rows over the active node set.

    Parameters
    ----------
    graph:
        Directed graph with ``travel_time`` edge weights.
    nodes:
        Initial active sources to precompute rows for.  ``None`` means
        every node of the graph (fine for small/medium networks).
    max_rows:
        Optional bound on the number of rows kept; ``None`` (default)
        keeps every row ever built, which is the point of this backend.
    """

    name = "matrix"

    def __init__(
        self,
        graph: nx.DiGraph,
        nodes: Iterable[int] | None = None,
        max_rows: int | None = None,
        kernel: str = "auto",
    ) -> None:
        super().__init__(graph)
        #: Requested and resolved kernel: "csr" stores rows as float64
        #: numpy vectors with vectorised refresh (and can place them in
        #: shared memory for process shards); "dict" stores plain Python
        #: lists — same indexing, no numpy dependency.
        self.requested_kernel = kernel
        self.kernel = resolve_kernel(kernel)
        started = time.perf_counter()
        self._node_order = sorted(graph.nodes)
        self._columns: dict[int, int] = {
            node: idx for idx, node in enumerate(self._node_order)
        }
        self._num_nodes = len(self._columns)
        self._rows: dict[int, "np.ndarray | list[float]"] = {}
        self._shared_pack: SharedArrayPack | None = None
        # Reverse arrival maps (target -> {source: seconds}) built for
        # many-to-one batches whose sources have no rows; memoised (LRU
        # bounded, each map is O(V)) so repeated dispatch probes against
        # the same pickup do not rerun the reverse Dijkstra.
        self._reverse_maps: OrderedDict[int, dict[int, float]] = OrderedDict()
        self._max_rows = max_rows
        self._refreshes = 0
        initial = list(dict.fromkeys(nodes)) if nodes is not None else list(
            self._columns
        )
        self._build_rows([node for node in initial if node in self._columns])
        self._precompute_seconds = time.perf_counter() - started

    @property
    def num_rows(self) -> int:
        """Number of active sources with a materialised row."""
        return len(self._rows)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def travel_time(self, source: int, target: int) -> float:
        self._queries += 1
        if source == target:
            return 0.0
        row = self._rows.get(source)
        if row is None:
            self._cache_misses += 1
            self._build_rows([source])
            row = self._rows[source]
        else:
            self._cache_hits += 1
        value = row[self._columns[target]]
        if math.isinf(value):
            raise UnreachableError(source, target)
        return float(value)

    def travel_times_from(self, source: int) -> Mapping[int, float]:
        self._queries += 1
        row = self._rows.get(source)
        if row is None:
            self._cache_misses += 1
            self._build_rows([source])
            row = self._rows[source]
        else:
            self._cache_hits += 1
        return {
            node: float(row[idx])
            for node, idx in self._columns.items()
            if not math.isinf(row[idx])
        }

    def travel_times_to(self, target: int) -> Mapping[int, float]:
        """All travel times to ``target``, read down the target's column.

        When every graph node has a materialised row this is a pure
        column scan over precomputed data.  With partial row coverage a
        single reverse Dijkstra fills in the sources without rows — it
        does *not* materialise their rows, so a many-to-one probe does
        not inflate the row store.
        """
        self._queries += 1
        idx = self._columns[target]
        if len(self._rows) == self._num_nodes:
            self._cache_hits += 1
            return {
                source: float(row[idx])
                for source, row in self._rows.items()
                if not math.isinf(row[idx])
            }
        arrivals = dict(self._arrivals_to(target))
        for source, row in self._rows.items():
            if not math.isinf(row[idx]):
                arrivals[source] = float(row[idx])
        return arrivals

    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        source_list = list(dict.fromkeys(sources))
        target_list = list(dict.fromkeys(targets))
        self._batched_queries += len(source_list) * len(target_list)
        if len(target_list) == 1 and len(source_list) > 1:
            return self._many_to_one(source_list, target_list[0])
        # Batched refresh: materialise every missing source in one go.
        missing = [source for source in source_list if source not in self._rows]
        if missing:
            self._cache_misses += len(missing)
            self._build_rows(missing)
        self._cache_hits += len(source_list) - len(missing)
        columns = [self._columns[target] for target in target_list]
        result: dict[tuple[int, int], float] = {}
        for source in source_list:
            row = self._rows[source]
            for target, idx in zip(target_list, columns):
                if source == target:
                    result[(source, target)] = 0.0
                    continue
                value = row[idx]
                if not math.isinf(value):
                    result[(source, target)] = float(value)
        self._queries += len(result)
        return result

    def _many_to_one(
        self, source_list: list[int], target: int
    ) -> dict[tuple[int, int], float]:
        """Answer a many-sources-to-one-target batch by column reads.

        Sources with a materialised row are read down the target's
        column; the remainder is settled with one reverse Dijkstra
        instead of one forward Dijkstra (row build) per missing source.
        """
        idx = self._columns[target]
        missing = [
            source
            for source in source_list
            if source not in self._rows and source != target
        ]
        arrivals: dict[int, float] = {}
        if missing:
            arrivals = self._arrivals_to(target)
        self._cache_hits += len(source_list) - len(missing)
        result: dict[tuple[int, int], float] = {}
        for source in source_list:
            if source == target:
                result[(source, target)] = 0.0
                continue
            row = self._rows.get(source)
            if row is not None:
                value = row[idx]
                if not math.isinf(value):
                    result[(source, target)] = float(value)
            elif source in arrivals:
                result[(source, target)] = arrivals[source]
        self._queries += len(result)
        return result

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every row; they are rebuilt lazily on the next queries."""
        self._rows.clear()
        self._reverse_maps.clear()
        self._drop_reverse_graph()

    def cache_info(self) -> CacheInfo:
        return CacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            maxsize=self._max_rows,
            currsize=len(self._rows),
        )

    def _extra_stats(self) -> dict[str, float]:
        return {
            "matrix_rows": float(len(self._rows)),
            "matrix_refreshes": float(self._refreshes),
            "reverse_cached_targets": float(len(self._reverse_maps)),
        }

    # ------------------------------------------------------------------
    # shared-memory protocol (process-mode dispatch shards)
    # ------------------------------------------------------------------
    def share_memory(self) -> dict | None:
        """Stack the built rows into one shared 2D segment; return handle.

        Rows built *after* sharing stay private to whichever process
        builds them (exactly as forked copies behave today); the shared
        block covers the rows that exist at pool start — the bulk of
        the memory for a prewarmed oracle.
        """
        if self.kernel != "csr" or not self._rows:
            return None
        if self._shared_pack is None:
            order = list(self._rows)
            stacked = np.stack([self._rows[source] for source in order])
            pack = SharedArrayPack.create({"rows": stacked})
            shared = pack.arrays["rows"]
            for i, source in enumerate(order):
                self._rows[source] = shared[i]
            self._shared_pack = pack
            self._shared_order = order
        return {
            "kind": "matrix-rows",
            "order": list(self._shared_order),
            "segments": self._shared_pack.handle(),
        }

    def adopt_shared(self, handle) -> None:
        """Attach this (child-process) oracle to the shared row block."""
        if self.kernel != "csr" or handle.get("kind") != "matrix-rows":
            return
        pack = SharedArrayPack.attach(handle["segments"])
        shared = pack.arrays["rows"]
        for i, source in enumerate(handle["order"]):
            self._rows[source] = shared[i]
        self._shared_pack = pack

    def release_shared(self) -> None:
        """Copy shared rows back to private memory and unlink (creator)."""
        if self._shared_pack is None:
            return
        pack = self._shared_pack
        self._shared_pack = None
        order = getattr(self, "_shared_order", [])
        self._shared_order = []
        shared = pack.arrays.get("rows")
        if shared is not None:
            for i, source in enumerate(order):
                if source in self._rows:
                    self._rows[source] = np.array(shared[i], copy=True)
        pack.close()
        pack.unlink()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _arrivals_to(self, target: int) -> dict[int, float]:
        """Memoised reverse arrival map (one miss per map built)."""
        cached = self._reverse_maps.get(target)
        if cached is not None:
            self._cache_hits += 1
            self._reverse_maps.move_to_end(target)
            return cached
        self._cache_misses += 1
        arrivals = self._dijkstra_to(target)
        self._reverse_maps[target] = arrivals
        if len(self._reverse_maps) > DEFAULT_MAX_REVERSE_MAPS:
            self._reverse_maps.popitem(last=False)
            self._evictions += 1
        return arrivals

    def _build_rows(self, sources: list[int]) -> None:
        if not sources:
            return
        self._refreshes += 1
        node_order = self._node_order
        use_csr = self.kernel == "csr"
        for source in sources:
            distances = self._dijkstra_from(source)
            get = distances.get
            if use_csr:
                # Vectorised refresh: one bulk fill per row instead of a
                # Python assignment per settled node.
                row: "np.ndarray | list[float]" = np.fromiter(
                    (get(node, _INF) for node in node_order),
                    dtype=np.float64,
                    count=self._num_nodes,
                )
            else:
                row = [get(node, _INF) for node in node_order]
            self._rows[source] = row
        if self._max_rows is not None:
            while len(self._rows) > self._max_rows:
                # Rows are insertion-ordered; evict the oldest.
                evicted = next(iter(self._rows))
                del self._rows[evicted]
                self._evictions += 1
