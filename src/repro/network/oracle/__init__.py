"""Pluggable shortest-path distance oracles for the routing hot path.

Five built-in backends cover the setup-cost/query-cost spectrum:

==========  =======================  =====================================
name        setup                    point-to-point query
==========  =======================  =====================================
``lazy``    none                     one Dijkstra per unseen source, then
                                     O(1) (LRU-bounded per-source cache)
``landmark``  ``O(k)`` Dijkstras     bidirectional A* guided by landmark
                                     (ALT) lower bounds
``matrix``  one Dijkstra per         O(1) dense-row lookup, batched
            active source            refresh for unseen sources
``ch``      one node contraction     bidirectional *upward* search over
            pass (edge-difference    the contraction hierarchy — tiny
            order, witness           search spaces, no per-node state
            searches)                proportional to the graph
``overlay``  multilevel coarsening   coarse-graph query between cluster
            + inner oracle on the    representatives, certified within a
            coarse graph (city-      configurable relative error bound
            scale readiness)         (exact refinement when it is not)
==========  =======================  =====================================

Select a backend through ``SimulationConfig(oracle_backend=...)``, the
``--oracle`` CLI flag, or directly via ``RoadNetwork.use_backend(name)``.

All backends also answer the dispatch hot path's many-sources-to-
one-target shape natively: ``travel_times_to(target)`` runs a single
search on the *reversed* graph (lazy keeps an LRU of per-target reverse
distance maps, landmark runs an early-terminating backward search over
its reverse adjacency, matrix reads the target's column, ch runs a
backward upward search plus a linear downward sweep — reverse PHAST),
and ``travel_times_many`` routes many-to-one blocks through it (ch
scans RPHAST-style target buckets with one small upward search per
source).  The ``ch`` backend can also unpack its shortcuts back into
original edges, so ``RoadNetwork.shortest_path`` routes through it
instead of rerunning Dijkstra.
"""

from .base import STATS_SCHEMA_VERSION, CacheInfo, DistanceOracle, OracleStats
from .csr import HAVE_NUMPY, KERNELS, resolve_kernel
from .cache import (
    CacheLoadOutcome,
    ch_cache_path,
    graph_signature,
    load_ch_preprocessing,
    load_ch_preprocessing_outcome,
    quarantine_cache_file,
    save_ch_preprocessing,
)
from .ch import CHOracle
from .landmark import LandmarkOracle
from .lazy import LazyDijkstraOracle
from .matrix import MatrixOracle
from .registry import (
    ORACLE_BACKENDS,
    available_backends,
    configure_oracle,
    create_oracle,
    register_oracle,
)

__all__ = [
    "CacheInfo",
    "CHOracle",
    "HAVE_NUMPY",
    "KERNELS",
    "STATS_SCHEMA_VERSION",
    "resolve_kernel",
    "CacheLoadOutcome",
    "ch_cache_path",
    "graph_signature",
    "load_ch_preprocessing",
    "load_ch_preprocessing_outcome",
    "quarantine_cache_file",
    "save_ch_preprocessing",
    "DistanceOracle",
    "OracleStats",
    "LazyDijkstraOracle",
    "LandmarkOracle",
    "MatrixOracle",
    "ORACLE_BACKENDS",
    "available_backends",
    "configure_oracle",
    "create_oracle",
    "register_oracle",
]
