"""CSR array representation of prepared oracle graphs + vectorised kernels.

The dict-based oracle inner loops (PHAST downward sweeps, RPHAST bucket
scans, matrix row refresh) iterate Python objects edge by edge.  This
module re-represents the *prepared* search structures as flat numpy
arrays so the hot kernels become a handful of vectorised operations:

* :func:`adjacency_to_csr` packs a list-of-adjacency graph into the
  classic CSR triple ``(indptr, indices, weights)`` — ``int64`` index
  arrays and one ``float64`` weight array, no per-edge Python objects;
* :class:`LevelSweep` stores one PHAST sweep direction as level-grouped
  edge arrays: every edge of the sweep DAG goes from a higher-ranked
  tail to a lower-ranked head, so grouping edges by the tail's *level*
  (longest dependency-path depth) turns the sweep into one
  ``np.minimum.at`` scatter-relaxation per level — identical results to
  the node-by-node dict sweep, since every tail distance is final
  before its level is relaxed;
* :class:`SharedArrayPack` places named arrays into
  ``multiprocessing.shared_memory`` segments and re-attaches views from
  a small picklable handle, so process-mode dispatch shards map one
  copy of the prepared arrays instead of duplicating them per fork.

numpy is optional: when it is absent ``HAVE_NUMPY`` is ``False``,
:func:`resolve_kernel` answers ``"dict"`` for every request, and the
oracles keep their pure-Python paths — nothing in this module is
imported into a hot path without checking the flag first.
"""

from __future__ import annotations

from typing import Mapping, Sequence

# Re-exported here because this module is the kernel seam: callers ask
# the oracle layer, not repro.compat, whether vectorisation exists.
from ...compat import HAVE_NUMPY, np

#: Valid values of the ``kernel`` oracle option.
KERNELS = ("auto", "dict", "csr")


def resolve_kernel(kernel: str) -> str:
    """Resolve a requested kernel name to the one that will actually run.

    ``"auto"`` picks ``"csr"`` when numpy is importable and ``"dict"``
    otherwise; an explicit ``"csr"`` request degrades to ``"dict"`` when
    numpy is absent (the pure-Python fallback is always available, and a
    missing optional dependency must not fail a run).  Unknown names
    raise ``ValueError`` — config layers turn that into a
    ``ConfigurationError`` with the valid options listed.
    """
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown oracle kernel {kernel!r}; valid kernels: {KERNELS}"
        )
    if kernel == "dict":
        return "dict"
    return "csr" if HAVE_NUMPY else "dict"


def adjacency_to_csr(
    num_nodes: int, adjacency: Sequence[Sequence[tuple[int, float]]]
):
    """Pack ``adjacency[u] = [(v, w), ...]`` into ``(indptr, indices, weights)``.

    ``indptr`` is ``int64`` of length ``num_nodes + 1``; ``indices`` and
    ``weights`` hold the edges of node ``u`` in slots
    ``indptr[u]:indptr[u + 1]``, preserving adjacency order.
    """
    if np is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("numpy is required for CSR packing")
    counts = np.fromiter(
        (len(edges) for edges in adjacency), dtype=np.int64, count=num_nodes
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.empty(total, dtype=np.int64)
    weights = np.empty(total, dtype=np.float64)
    pos = 0
    for edges in adjacency:
        for v, w in edges:
            indices[pos] = v
            weights[pos] = w
            pos += 1
    return indptr, indices, weights


def compute_levels(
    order_desc: Sequence[int],
    adjacencies: Sequence[Sequence[Sequence[tuple[int, float]]]],
) -> list[int]:
    """Longest-dependency-path level of every node under the sweep DAGs.

    ``order_desc`` is the node processing order (decreasing CH rank);
    every edge of every adjacency goes from a node processed earlier to
    one processed later, so a single pass in processing order computes
    ``level[v] = 1 + max(level of predecessors)``.  All adjacencies
    share one level assignment, letting the forward and reverse sweeps
    reuse the same grouping.
    """
    level = [0] * (len(order_desc))
    for u in order_desc:
        lu = level[u] + 1
        for adjacency in adjacencies:
            for v, _ in adjacency[u]:
                if level[v] < lu:
                    level[v] = lu
    return level


class LevelSweep:
    """One PHAST sweep direction as level-grouped flat edge arrays.

    ``sweep`` relaxes every edge exactly once, level by level: within a
    level all tail distances are final (every edge strictly increases
    the level), so one unbuffered ``np.minimum.at`` per level reproduces
    the sequential dict sweep's results exactly — the same ``tail + w``
    sums feed the same minima, only grouped differently.
    """

    __slots__ = ("tails", "heads", "weights", "level_ptr", "_level_views")

    def __init__(self, tails, heads, weights, level_ptr) -> None:
        self.tails = tails
        self.heads = heads
        self.weights = weights
        #: Python list of slice boundaries, one entry per level + 1.
        self.level_ptr = level_ptr
        self._rebuild_views()

    def _rebuild_views(self) -> None:
        # Slicing per level inside the sweep costs three array-view
        # constructions per level per query; on small graphs that
        # overhead rivals the relaxation itself.  The views are cheap to
        # keep (they alias the flat arrays), so build them once.  Empty
        # levels are dropped — their minimum.at would be a no-op.
        self._level_views = []
        ptr = self.level_ptr
        for i in range(len(ptr) - 1):
            s, e = ptr[i], ptr[i + 1]
            if e > s:
                self._level_views.append(
                    (self.tails[s:e], self.heads[s:e], self.weights[s:e])
                )

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Sequence[Sequence[tuple[int, float]]],
        level: Sequence[int],
    ) -> "LevelSweep":
        """Group ``adjacency``'s edges by the tail node's level."""
        if np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("numpy is required for the CSR kernel")
        per_level: dict[int, list[tuple[int, int, float]]] = {}
        for u, edges in enumerate(adjacency):
            if not edges:
                continue
            bucket = per_level.setdefault(level[u], [])
            for v, w in edges:
                bucket.append((u, v, w))
        total = sum(len(bucket) for bucket in per_level.values())
        tails = np.empty(total, dtype=np.int64)
        heads = np.empty(total, dtype=np.int64)
        weights = np.empty(total, dtype=np.float64)
        level_ptr = [0]
        pos = 0
        for lvl in sorted(per_level):
            for u, v, w in per_level[lvl]:
                tails[pos] = u
                heads[pos] = v
                weights[pos] = w
                pos += 1
            level_ptr.append(pos)
        return cls(tails, heads, weights, level_ptr)

    @property
    def num_edges(self) -> int:
        return len(self.tails)

    def sweep(self, dist) -> None:
        """Relax every edge into ``dist`` (float64, inf = unreached), in place."""
        minimum_at = np.minimum.at
        for tails, heads, weights in self._level_views:
            minimum_at(dist, heads, dist[tails] + weights)

    def export_arrays(self) -> dict:
        """The big arrays, for shared-memory placement (keyed by slot)."""
        return {"tails": self.tails, "heads": self.heads, "weights": self.weights}

    def replace_arrays(self, arrays: Mapping) -> None:
        """Swap the edge arrays for (shared-memory) views of equal shape."""
        self.tails = arrays["tails"]
        self.heads = arrays["heads"]
        self.weights = arrays["weights"]
        # The per-level views alias the old arrays; rebuild them so the
        # sweep reads the (shared-memory) replacements.
        self._rebuild_views()


class CHSweepKernel:
    """Both PHAST sweep directions of one contraction hierarchy.

    ``forward`` relaxes downward out-edges (one-to-all PHAST);
    ``reverse`` relaxes upward in-edges (all-to-one reverse PHAST).
    One preallocated float64 distance buffer is reused across queries —
    the owning oracle serialises queries behind its lock.
    """

    def __init__(
        self,
        num_nodes: int,
        order_desc: Sequence[int],
        down_out: Sequence[Sequence[tuple[int, float]]],
        up_in: Sequence[Sequence[tuple[int, float]]],
    ) -> None:
        level = compute_levels(order_desc, (down_out, up_in))
        self.forward = LevelSweep.from_adjacency(down_out, level)
        self.reverse = LevelSweep.from_adjacency(up_in, level)
        self._num_nodes = num_nodes
        self._dist = np.empty(num_nodes, dtype=np.float64)

    def run(self, sweep: LevelSweep, seeds: Mapping[int, float]):
        """Seed the buffer from ``seeds`` and run one sweep over it.

        Returns the buffer itself (valid until the next ``run``); use
        :func:`finite_entries` to extract the reachable part.
        """
        dist = self._dist
        dist.fill(np.inf)
        if seeds:
            idx = np.fromiter(seeds.keys(), dtype=np.int64, count=len(seeds))
            val = np.fromiter(seeds.values(), dtype=np.float64, count=len(seeds))
            dist[idx] = val
        sweep.sweep(dist)
        return dist

    def seed_buffer(self, seeds: Mapping[int, float]):
        """Fill the buffer from ``seeds`` without sweeping (bucket scans)."""
        dist = self._dist
        dist.fill(np.inf)
        if seeds:
            idx = np.fromiter(seeds.keys(), dtype=np.int64, count=len(seeds))
            val = np.fromiter(seeds.values(), dtype=np.float64, count=len(seeds))
            dist[idx] = val
        return dist

    # -- shared-memory support -----------------------------------------
    def export_arrays(self) -> dict[str, object]:
        out = {}
        for prefix, sweep in (("fwd", self.forward), ("rev", self.reverse)):
            for key, arr in sweep.export_arrays().items():
                out[f"{prefix}_{key}"] = arr
        return out

    def replace_arrays(self, arrays: Mapping) -> None:
        for prefix, sweep in (("fwd", self.forward), ("rev", self.reverse)):
            sweep.replace_arrays(
                {
                    key: arrays[f"{prefix}_{key}"]
                    for key in ("tails", "heads", "weights")
                }
            )


def finite_entries(dist):
    """Indices and values of the finite entries of a distance buffer."""
    idx = np.flatnonzero(np.isfinite(dist))
    return idx, dist[idx]


def bucket_arrays(bucket: Mapping[int, float]):
    """A target bucket ``{node_idx: dist}`` as ``(nodes, dists)`` arrays."""
    nodes = np.fromiter(bucket.keys(), dtype=np.int64, count=len(bucket))
    dists = np.fromiter(bucket.values(), dtype=np.float64, count=len(bucket))
    return nodes, dists


class SharedArrayPack:
    """Named numpy arrays backed by ``multiprocessing.shared_memory``.

    ``create`` copies the arrays into fresh segments and returns a pack
    whose ``arrays`` are views into them; ``handle()`` is a small
    picklable description (segment name, dtype, shape per array) a child
    process turns back into views with ``attach`` — the handle's size is
    independent of the array sizes, which is the whole point.  The
    creator calls ``unlink()`` exactly once when the arrays are done;
    every attacher (and the creator) calls ``close()`` to drop its own
    mapping.
    """

    def __init__(self, segments: dict, arrays: dict, owner: bool = True) -> None:
        self._segments = segments
        self.arrays = arrays
        #: Only the creating process may unlink; attachers' ``unlink()``
        #: is a no-op so a confused teardown can never destroy segments
        #: other processes still map.
        self._owner = owner
        self._unlinked = False

    @classmethod
    def create(cls, arrays: Mapping) -> "SharedArrayPack":
        from multiprocessing import shared_memory

        segments: dict = {}
        views: dict = {}
        try:
            for key, arr in arrays.items():
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, int(arr.nbytes))
                )
                segments[key] = shm
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                views[key] = view
        except Exception:
            for shm in segments.values():
                shm.close()
                shm.unlink()
            raise
        return cls(segments, views)

    @classmethod
    def attach(cls, handle: Mapping) -> "SharedArrayPack":
        from multiprocessing import shared_memory

        segments: dict = {}
        views: dict = {}
        try:
            for key, (name, dtype, shape) in handle.items():
                shm = shared_memory.SharedMemory(name=name, create=False)
                segments[key] = shm
                views[key] = np.ndarray(
                    tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf
                )
        except Exception:
            for shm in segments.values():
                shm.close()
            raise
        return cls(segments, views, owner=False)

    def handle(self) -> dict:
        """Picklable description sufficient to :meth:`attach` elsewhere."""
        return {
            key: (shm.name, str(self.arrays[key].dtype), self.arrays[key].shape)
            for key, shm in self._segments.items()
        }

    def copies(self) -> dict:
        """Private (non-shared) copies of every array."""
        return {key: np.array(arr, copy=True) for key, arr in self.arrays.items()}

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self.arrays = {}
        for shm in self._segments.values():
            shm.close()

    def unlink(self) -> None:
        """Destroy the segments (creator only; idempotent)."""
        if self._unlinked or not self._owner:
            return
        self._unlinked = True
        for shm in self._segments.values():
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
