"""Disk persistence of contraction-hierarchy preprocessing.

Contracting a city-scale graph is the dominant cost of standing up the
``ch`` backend (~0.8 s on the 1024-node benchmark city, minutes on real
map extracts).  The contraction itself depends only on the graph and on
the witness hop limit, so its products — the node order and the
shortcut edges — can be computed once and replayed by every later
process that works on the same graph.

This module provides that persistence layer:

* :func:`graph_signature` — a stable content hash of a directed graph
  (sorted nodes plus sorted ``(u, v, travel_time)`` edge triples), used
  both as the cache key and as the integrity check on load;
* :func:`save_ch_preprocessing` / :func:`load_ch_preprocessing` — JSON
  round-trip of :meth:`CHOracle.export_preprocessing` payloads, keyed
  by ``(graph signature, witness hop limit)``.  Loading is strictly
  validating: a payload written for a different graph, a different hop
  limit, an older format, or a corrupted file simply yields ``None``
  and the caller re-contracts from scratch — the cache can never make
  an answer wrong, only a build fast.

The registry's ``ch`` factory wires this up behind the ``cache_dir``
option (``SimulationConfig.oracle_cache_dir`` / ``--oracle-cache``), so
a warm cache directory makes a fresh process skip preprocessing
entirely: the ROADMAP's "persist the contraction order" item.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover
    from .ch import CHOracle

#: Payload layout version; bump when ``export_preprocessing`` changes
#: shape so stale files are rebuilt instead of misread.
CH_CACHE_FORMAT = 1


def graph_signature(graph: nx.DiGraph) -> str:
    """Stable content hash of a travel-time-weighted directed graph.

    Two graphs share a signature exactly when they have the same node
    ids and the same directed edges with the same ``travel_time``
    weights (full float precision via ``repr``).  Node coordinates are
    deliberately excluded: they never influence shortest-path answers,
    so cosmetic relayouts keep the cache warm.
    """
    hasher = hashlib.sha256()
    for node in sorted(graph.nodes):
        hasher.update(f"n{node!r}\n".encode())
    edges = sorted(
        (u, v, float(data)) for u, v, data in graph.edges(data="travel_time")
    )
    for u, v, weight in edges:
        hasher.update(f"e{u!r}>{v!r}:{weight!r}\n".encode())
    return hasher.hexdigest()


def ch_cache_path(
    cache_dir: str | Path, graph: nx.DiGraph, witness_hop_limit: int
) -> Path:
    """Cache-file location for ``graph`` contracted at ``witness_hop_limit``."""
    signature = graph_signature(graph)
    return Path(cache_dir) / f"ch-{signature[:24]}-w{witness_hop_limit}.json"


def load_ch_preprocessing(
    path: str | Path, graph: nx.DiGraph, witness_hop_limit: int
) -> Mapping[str, Any] | None:
    """Read a persisted preprocessing payload, or ``None`` when unusable.

    ``None`` covers every miss uniformly — no file, unreadable JSON, a
    different format version, a different hop limit, or a signature
    mismatch (the file was written for another graph).  Callers treat
    ``None`` as "contract from scratch".
    """
    file_path = Path(path)
    try:
        payload = json.loads(file_path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("format") != CH_CACHE_FORMAT:
        return None
    if payload.get("witness_hop_limit") != witness_hop_limit:
        return None
    if payload.get("graph") != graph_signature(graph):
        return None
    data = payload.get("data")
    return data if isinstance(data, dict) else None


def save_ch_preprocessing(
    path: str | Path, oracle: "CHOracle", graph: nx.DiGraph
) -> Path:
    """Persist ``oracle``'s contraction products for ``graph`` at ``path``.

    The write is atomic (temp file + rename) so a crashed process never
    leaves a half-written payload a later load would have to distrust.
    """
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": CH_CACHE_FORMAT,
        "graph": graph_signature(graph),
        "witness_hop_limit": oracle.witness_hop_limit,
        "data": oracle.export_preprocessing(),
    }
    scratch = file_path.with_name(file_path.name + ".tmp")
    scratch.write_text(json.dumps(payload))
    scratch.replace(file_path)
    return file_path
