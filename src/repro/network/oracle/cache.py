"""Disk persistence of contraction-hierarchy preprocessing.

Contracting a city-scale graph is the dominant cost of standing up the
``ch`` backend (~0.8 s on the 1024-node benchmark city, minutes on real
map extracts).  The contraction itself depends only on the graph and on
the witness hop limit, so its products — the node order and the
shortcut edges — can be computed once and replayed by every later
process that works on the same graph.

This module provides that persistence layer:

* :func:`graph_signature` — a stable content hash of a directed graph
  (sorted nodes plus sorted ``(u, v, travel_time)`` edge triples), used
  both as the cache key and as the integrity check on load;
* :func:`save_ch_preprocessing` / :func:`load_ch_preprocessing` — JSON
  round-trip of :meth:`CHOracle.export_preprocessing` payloads, keyed
  by ``(graph signature, witness hop limit)``.  Loading is strictly
  validating: a payload written for a different graph, a different hop
  limit, an older format, or a corrupted file simply yields ``None``
  and the caller re-contracts from scratch — the cache can never make
  an answer wrong, only a build fast.

Failures are no longer silent: IO errors are retried under the
resilience layer's backoff policy and *counted*
(:class:`CacheLoadOutcome.load_failures` flows into the oracle's
``cache_load_failures`` stat), and a file that fails to even parse is
**quarantined** to ``<name>.corrupt`` so the next process rebuilds once
instead of tripping over the same rotten bytes forever.  Semantic
mismatches (another graph, an older format) are *not* failures — they
are ordinary misses, and the rebuild overwrites the stale file anyway.

The registry's ``ch`` factory wires this up behind the ``cache_dir``
option (``SimulationConfig.oracle_cache_dir`` / ``--oracle-cache``), so
a warm cache directory makes a fresh process skip preprocessing
entirely: the ROADMAP's "persist the contraction order" item.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import networkx as nx

from ...resilience.faults import corrupt_file_if_scheduled, fault_point
from ...resilience.retry import RetryPolicy, retry_call

if TYPE_CHECKING:  # pragma: no cover
    from .ch import CHOracle

#: Payload layout version; bump when ``export_preprocessing`` changes
#: shape so stale files are rebuilt instead of misread.
CH_CACHE_FORMAT = 1

#: Backoff for cache-file IO: three quick tries (NFS hiccups, racing
#: writers), then the caller degrades to a rebuild.
CACHE_IO_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.02, max_delay=0.2, retry_on=(OSError,)
)


#: Bytes buffered between sha256 updates while hashing a graph.  The
#: digest is invariant under chunking, so this is purely a throughput
#: knob: fewer ``update`` calls without any O(E) intermediate.
_SIGNATURE_CHUNK = 65_536


def graph_signature(graph: nx.DiGraph) -> str:
    """Stable content hash of a travel-time-weighted directed graph.

    Two graphs share a signature exactly when they have the same node
    ids and the same directed edges with the same ``travel_time``
    weights (full float precision via ``repr``).  Node coordinates are
    deliberately excluded: they never influence shortest-path answers,
    so cosmetic relayouts keep the cache warm.

    The hash is computed streamingly — nodes in sorted order, then each
    node's out-edges in sorted target order, buffered into chunked
    sha256 updates — so a million-edge signature needs O(V + max
    out-degree) working memory instead of materialising every edge
    triple.  Because a ``DiGraph`` holds at most one edge per ``(u,
    v)``, this emits exactly the byte stream the previous
    sort-all-triples implementation hashed: existing cache files stay
    warm with no format bump.
    """
    hasher = hashlib.sha256()
    buffer = bytearray()

    def push(chunk: bytes) -> None:
        buffer.extend(chunk)
        if len(buffer) >= _SIGNATURE_CHUNK:
            hasher.update(buffer)
            buffer.clear()

    nodes = sorted(graph.nodes)
    for node in nodes:
        push(f"n{node!r}\n".encode())
    for u in nodes:
        for v in sorted(graph.successors(u)):
            weight = float(graph[u][v]["travel_time"])
            push(f"e{u!r}>{v!r}:{weight!r}\n".encode())
    hasher.update(bytes(buffer))
    return hasher.hexdigest()


def ch_cache_path(
    cache_dir: str | Path,
    graph: nx.DiGraph,
    witness_hop_limit: int,
    variant: str = "",
) -> Path:
    """Cache-file location for ``graph`` contracted at ``witness_hop_limit``.

    ``variant`` distinguishes alternative contraction strategies (e.g.
    the coarsening-derived node order) so their payloads never satisfy
    each other's loads; the default (edge-difference) keeps the
    historical filename, so existing caches stay warm.
    """
    signature = graph_signature(graph)
    suffix = f"-{variant}" if variant else ""
    return Path(cache_dir) / (
        f"ch-{signature[:24]}-w{witness_hop_limit}{suffix}.json"
    )


@dataclass(frozen=True)
class CacheLoadOutcome:
    """What one cache load attempt produced, failures included.

    Attributes
    ----------
    payload:
        The validated preprocessing payload, or ``None`` on any miss.
    load_failures:
        IO errors and parse failures encountered (retried IO counts
        each failed attempt).  Semantic mismatches — another graph, an
        older format — are ordinary misses and do not count.
    quarantined:
        Where an unparseable file was moved (``<name>.corrupt``), or
        ``None``.
    corrupt:
        Whether the file existed but failed to parse (the degradation
        the registry records).
    """

    payload: Mapping[str, Any] | None
    load_failures: int = 0
    quarantined: Path | None = None
    corrupt: bool = False


def quarantine_cache_file(path: str | Path) -> Path | None:
    """Move a rotten cache file aside to ``<name>.corrupt`` (best effort).

    Keeps the bytes for post-mortems while guaranteeing the next load
    does not trip over them again; an IO failure during the move just
    leaves the file in place (the rebuild overwrites it atomically).
    """
    file_path = Path(path)
    target = file_path.with_name(file_path.name + ".corrupt")
    try:
        file_path.replace(target)
    except OSError:
        return None
    return target


def load_ch_preprocessing_outcome(
    path: str | Path, graph: nx.DiGraph, witness_hop_limit: int
) -> CacheLoadOutcome:
    """Read a persisted payload, reporting failures instead of hiding them.

    The read is retried under :data:`CACHE_IO_POLICY`; a file that
    cannot be parsed at all is quarantined to ``<name>.corrupt``.  A
    ``payload`` of ``None`` always means "contract from scratch" — the
    extra fields say *why*.
    """
    file_path = Path(path)
    failures = 0
    if not file_path.exists():
        return CacheLoadOutcome(None)
    # Chaos hook: deterministic schedules may garble the file here,
    # exactly where real bit rot would be discovered.
    corrupt_file_if_scheduled("oracle.cache.file", file_path)

    def read_bytes() -> bytes:
        fault_point("oracle.cache.load")
        # Raw bytes: a file garbled into invalid UTF-8 must surface as
        # a parse failure (and be quarantined below), not escape as a
        # UnicodeDecodeError from the read itself.
        return file_path.read_bytes()

    def count_failure(attempt: int, exc: BaseException, delay: float) -> None:
        nonlocal failures
        failures += 1

    try:
        blob = retry_call(read_bytes, policy=CACHE_IO_POLICY, on_retry=count_failure)
    except OSError:
        return CacheLoadOutcome(None, load_failures=failures + 1)
    try:
        payload = json.loads(blob)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        quarantined = quarantine_cache_file(file_path)
        return CacheLoadOutcome(
            None, load_failures=failures + 1, quarantined=quarantined, corrupt=True
        )
    if not isinstance(payload, dict):
        quarantined = quarantine_cache_file(file_path)
        return CacheLoadOutcome(
            None, load_failures=failures + 1, quarantined=quarantined, corrupt=True
        )
    if payload.get("format") != CH_CACHE_FORMAT:
        return CacheLoadOutcome(None, load_failures=failures)
    if payload.get("witness_hop_limit") != witness_hop_limit:
        return CacheLoadOutcome(None, load_failures=failures)
    if payload.get("graph") != graph_signature(graph):
        return CacheLoadOutcome(None, load_failures=failures)
    data = payload.get("data")
    if not isinstance(data, dict):
        quarantined = quarantine_cache_file(file_path)
        return CacheLoadOutcome(
            None, load_failures=failures + 1, quarantined=quarantined, corrupt=True
        )
    return CacheLoadOutcome(data, load_failures=failures)


def load_ch_preprocessing(
    path: str | Path, graph: nx.DiGraph, witness_hop_limit: int
) -> Mapping[str, Any] | None:
    """Read a persisted preprocessing payload, or ``None`` when unusable.

    ``None`` covers every miss uniformly — no file, unreadable JSON, a
    different format version, a different hop limit, or a signature
    mismatch (the file was written for another graph).  Callers treat
    ``None`` as "contract from scratch".  (The registry uses
    :func:`load_ch_preprocessing_outcome` to also learn *why*.)
    """
    return load_ch_preprocessing_outcome(path, graph, witness_hop_limit).payload


def save_ch_preprocessing(
    path: str | Path, oracle: "CHOracle", graph: nx.DiGraph
) -> Path:
    """Persist ``oracle``'s contraction products for ``graph`` at ``path``.

    The write is atomic (temp file + rename) so a crashed process never
    leaves a half-written payload a later load would have to distrust,
    and the whole write is retried under :data:`CACHE_IO_POLICY` before
    the final :class:`OSError` reaches the caller (who treats saving as
    best effort — a run never fails because its cache could not be
    written).
    """
    file_path = Path(path)
    payload = {
        "format": CH_CACHE_FORMAT,
        "graph": graph_signature(graph),
        "witness_hop_limit": oracle.witness_hop_limit,
        "data": oracle.export_preprocessing(),
    }
    serialised = json.dumps(payload)

    def write() -> None:
        fault_point("oracle.cache.save")
        file_path.parent.mkdir(parents=True, exist_ok=True)
        scratch = file_path.with_name(file_path.name + ".tmp")
        scratch.write_text(serialised)
        scratch.replace(file_path)

    retry_call(write, policy=CACHE_IO_POLICY)
    return file_path
