"""Contraction-hierarchy backend with bucket-based many-to-one queries.

Contraction hierarchies (Geisberger et al., "Contraction Hierarchies:
Faster and Simpler Hierarchical Routing in Road Networks") preprocess
the graph once and then answer point-to-point queries by searching a
tiny fraction of it:

1. **Contraction.**  Nodes are removed one at a time in importance order
   (least important first).  Removing node ``v`` must preserve all
   shortest paths among the remaining nodes, so for every in-neighbour
   ``u`` and out-neighbour ``w`` a *shortcut* edge ``u -> w`` of weight
   ``d(u,v) + d(v,w)`` is added — unless a hop-limited *witness search*
   proves a path of no greater weight already exists without ``v``.
   The order is the classic edge-difference heuristic (shortcuts added
   minus edges removed, plus a deleted-neighbours term) maintained with
   a lazy-update priority queue: a node's priority is recomputed when it
   is popped, and it is only contracted while still no worse than the
   next candidate.  Every shortcut records its *middle node* so paths
   can be unpacked back into original edges.

2. **Queries.**  Each node gets a rank (its contraction time).  Every
   edge of the augmented graph (original + shortcuts) is *upward* if it
   leads to a higher-ranked node and *downward* otherwise; any shortest
   path in the augmented graph can be taken as an up-then-down path.  A
   point-to-point query is therefore a bidirectional Dijkstra that only
   ever climbs: forward over upward edges from the source, backward over
   downward edges from the target, pruned as soon as a frontier cannot
   beat the best meeting distance.

The dispatch hot-path shapes are served natively:

* ``travel_times_to(target)`` runs the backward upward search from the
  target and then one linear *downward sweep* over nodes in decreasing
  rank order (reverse PHAST) — an exact all-sources-to-one-target map
  without touching the reversed original graph;
* ``travel_times_many`` uses RPHAST-style **node buckets**: the
  backward upward search from each target deposits ``(target,
  distance)`` entries on the nodes it settles (memoised per target, LRU
  bounded), and one small forward upward search per source scans the
  buckets it meets — constant-ish per-pair cost after the one
  target-side sweep, exactly what the fleet's batched worker-to-pickup
  blocks need;
* ``travel_times_from(source)`` is the symmetric forward PHAST sweep.

All distances are exact: witness searches are conservative (a pruned
search just adds a shortcut it might not have needed), so no shortest
path is ever lost.  Like the landmark backend, distances are assembled
from shortcut weights whose additions may associate differently than a
monolithic Dijkstra's, so answers can differ in the last few ulps;
callers needing bitwise identity should use ``lazy`` or ``matrix``.
"""

from __future__ import annotations

import functools
import threading
import time
from collections import OrderedDict
from heapq import heapify, heappop, heappush
from typing import Iterable, Mapping

import networkx as nx

from ...exceptions import UnreachableError
from .base import CacheInfo, DistanceOracle
from .csr import (
    CHSweepKernel,
    SharedArrayPack,
    bucket_arrays,
    finite_entries,
    resolve_kernel,
)


def _locked(method):
    """Run ``method`` under the oracle's query lock (reentrant).

    The hierarchy itself (ranks, augmented adjacency, shortcut middles)
    is pre-materialised at construction and never mutated, but queries
    memoise into the pair / bucket / arrival caches — ``OrderedDict``s
    whose ``move_to_end`` / ``popitem`` bookkeeping corrupts under
    concurrent mutation.  Guarding the entry points makes the oracle
    safe to share across the parallel dispatch engine's shard threads;
    callers see queries serialise, never torn state.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._query_lock:
            return method(self, *args, **kwargs)

    return wrapper

_INF = float("inf")

#: Default hop limit of the witness searches run during contraction.
#: Higher limits find more witnesses (fewer shortcuts, faster queries)
#: at the price of slower preprocessing; on lattice-like road networks
#: almost every witness is short.
DEFAULT_WITNESS_HOP_LIMIT = 5

#: Settled-node cap of a single witness search, bounding preprocessing
#: on dense or badly-shaped graphs.  A capped search is conservative:
#: it can only add shortcuts it might not have needed.
_WITNESS_SETTLE_LIMIT = 200

#: Default bound on memoised point-to-point results.
DEFAULT_PAIR_CACHE_SIZE = 200_000

#: Default bound on memoised per-target bucket maps (each is the
#: target's backward upward search space, typically far smaller than a
#: full reverse distance map).
DEFAULT_BUCKET_CACHE_SIZE = 1024

#: Default bound on memoised full arrival maps (reverse-PHAST products).
#: Each is O(num_nodes), so this is kept an order of magnitude smaller
#: than the bucket cache — the point of the CH backend is *not* to grow
#: matrix-like dense state.
DEFAULT_ARRIVAL_CACHE_SIZE = 64

#: At or above this many unanswered sources towards a single target, one
#: reverse-PHAST sweep (linear in the augmented graph) beats running a
#: forward upward search per source.
_MANY_TO_ONE_CUTOFF = 8

#: Sentinel distinguishing "not cached" from a cached unreachable verdict.
_MISSING = object()


class CHOracle(DistanceOracle):
    """Contraction-hierarchy distance oracle over a directed graph.

    Parameters
    ----------
    graph:
        Directed graph with ``travel_time`` edge weights.
    witness_hop_limit:
        Hop limit of the witness searches run while contracting.
    pair_cache_size:
        LRU bound on memoised point-to-point results (``None`` =
        unbounded).
    bucket_cache_size:
        LRU bound on memoised per-target bucket maps used by the
        many-to-one query path.
    arrival_cache_size:
        LRU bound on memoised full arrival maps (each O(num_nodes));
        kept small by default so the backend never approaches the dense
        matrix's memory footprint.
    seed:
        Unused today (contraction order is deterministic) but accepted
        so configs can thread their seed through uniformly.
    preprocessing:
        A payload previously produced by :meth:`export_preprocessing`
        (typically loaded from disk by
        :mod:`repro.network.oracle.cache`).  When given, the expensive
        contraction pass is skipped entirely and the hierarchy is
        restored from the recorded node order and augmented edges.  A
        payload that does not match this graph's node set raises
        ``ValueError``.
    node_order:
        Optional prescribed contraction order (a permutation of this
        graph's nodes, least important first) — e.g. the
        coarsening-derived order from
        :func:`repro.network.coarsen.coarsening_contraction_order`.
        Nodes are contracted in exactly this order, skipping the
        lazy-heap edge-difference priority maintenance; the witness
        searches and shortcut machinery are unchanged, so queries stay
        exact.  Ignored when ``preprocessing`` is given (the payload
        records its own order).  A non-permutation raises
        ``ValueError``.
    """

    name = "ch"

    #: Queries are guarded by a reentrant lock (see :func:`_locked`),
    #: so concurrent readers are safe — the parallel dispatch engine's
    #: thread shards query a shared CH oracle without external locking.
    thread_safe_queries = True

    def __init__(
        self,
        graph: nx.DiGraph,
        witness_hop_limit: int = DEFAULT_WITNESS_HOP_LIMIT,
        pair_cache_size: int | None = DEFAULT_PAIR_CACHE_SIZE,
        bucket_cache_size: int | None = DEFAULT_BUCKET_CACHE_SIZE,
        arrival_cache_size: int | None = DEFAULT_ARRIVAL_CACHE_SIZE,
        seed: int = 0,
        preprocessing: Mapping | None = None,
        kernel: str = "auto",
        node_order: Iterable | None = None,
    ) -> None:
        super().__init__(graph)
        if witness_hop_limit < 1:
            raise ValueError("witness_hop_limit must be at least 1")
        del seed
        #: The kernel asked for ("auto"/"dict"/"csr"); kept for the
        #: registry's reuse check.
        self.requested_kernel = kernel
        #: The kernel actually running: "csr" (vectorised numpy sweeps)
        #: or "dict" (pure-Python fallback, always available).
        self.kernel = resolve_kernel(kernel)
        #: The hop limit used during contraction; used (with
        #: :attr:`bucket_cache_size`) to decide whether a cached oracle
        #: can be reused for a config's settings.
        self.witness_hop_limit = witness_hop_limit
        #: LRU bound of the per-target bucket cache (the registry maps
        #: ``cache_size`` onto it).
        self.bucket_cache_size = bucket_cache_size
        self._pair_cache_size = pair_cache_size
        self._arrival_cache_size = arrival_cache_size
        # `None` marks a memoised *unreachable* verdict.
        self._pair_cache: OrderedDict[tuple[int, int], float | None] = OrderedDict()
        # target node -> {node index: descending-path distance to target}
        self._bucket_cache: OrderedDict[int, dict[int, float]] = OrderedDict()
        # target node -> [dense row | None, arrival map | None], the
        # reverse-PHAST product used by wide many-to-one batches.  The
        # csr kernel memoises the sweep row and materialises the
        # node-keyed map lazily; the dict kernel stores the map only.
        self._arrival_cache: OrderedDict[int, list] = OrderedDict()
        self._shortcuts_added = 0
        self._upward_settles = 0
        self._bucket_scans = 0
        #: Disk-cache load failures the registry observed while building
        #: this oracle (IO errors after retries, quarantined corrupt
        #: files); surfaced through ``oracle_stats`` as
        #: ``cache_load_failures``.
        self.cache_load_failures = 0
        self._query_lock = threading.RLock()

        started = time.perf_counter()
        self._nodes: list[int] = sorted(graph.nodes)
        self._index: dict[int, int] = {
            node: idx for idx, node in enumerate(self._nodes)
        }
        self._prescribed_order: list | None = None
        if node_order is not None and preprocessing is None:
            prescribed = list(node_order)
            if len(prescribed) != len(self._nodes) or len(
                set(prescribed)
            ) != len(prescribed) or any(
                node not in self._index for node in prescribed
            ):
                raise ValueError(
                    "node_order must be a permutation of the graph's nodes"
                )
            self._prescribed_order = prescribed
        self._loaded_from_cache = False
        if preprocessing is not None:
            self._restore(preprocessing)
            self._loaded_from_cache = True
        else:
            self._build()
        self._precompute_seconds = time.perf_counter() - started

    @property
    def node_order(self) -> list[int]:
        """Public node ids in internal-index order.

        Decodes the dense rows the csr kernel's :meth:`reverse_sweep`
        answers: ``row[i]`` is the arrival time from
        ``node_order[i]``.
        """
        return list(self._nodes)

    @property
    def preprocessing_loaded(self) -> bool:
        """Whether the hierarchy was restored from a persisted payload."""
        return self._loaded_from_cache

    @property
    def precompute_seconds(self) -> float:
        """Wall-clock cost of building (or restoring) the hierarchy."""
        return self._precompute_seconds

    # ------------------------------------------------------------------
    # preprocessing: contraction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        n = len(self._nodes)
        # Remaining-graph adjacency, mutated as nodes are contracted.
        # Parallel edges collapse to their minimum weight up front.
        fwd: list[dict[int, float]] = [{} for _ in range(n)]
        bwd: list[dict[int, float]] = [{} for _ in range(n)]
        # Augmented edge set (original edges + shortcuts) at their final
        # minimum weights, with the contracted middle node of a shortcut
        # (``None`` for an original edge) for path unpacking.
        aug: dict[tuple[int, int], float] = {}
        middle: dict[tuple[int, int], int | None] = {}
        for u, v, data in self._graph.edges(data=True):
            if u == v:
                continue
            ui, vi = self._index[u], self._index[v]
            w = float(data["travel_time"])
            old = fwd[ui].get(vi)
            if old is None or w < old:
                fwd[ui][vi] = w
                bwd[vi][ui] = w
                aug[(ui, vi)] = w
                middle[(ui, vi)] = None

        contracted = [False] * n
        deleted_neighbors = [0] * n
        rank = [0] * n
        order: list[int] = []

        def priority(v: int, shortcuts: list[tuple[int, int, float]]) -> int:
            removed = len(fwd[v]) + len(bwd[v])
            return len(shortcuts) - removed + deleted_neighbors[v]

        def contract(v: int, shortcuts: list[tuple[int, int, float]]) -> None:
            rank[v] = len(order)
            order.append(v)
            contracted[v] = True
            for ui, wi, weight in shortcuts:
                old = fwd[ui].get(wi)
                if old is None or weight < old:
                    fwd[ui][wi] = weight
                    bwd[wi][ui] = weight
                    if old is None or weight < aug[(ui, wi)]:
                        aug[(ui, wi)] = weight
                        middle[(ui, wi)] = v
                    self._shortcuts_added += 1
            for ui in bwd[v]:
                if not contracted[ui]:
                    deleted_neighbors[ui] += 1
                    del fwd[ui][v]
            for wi in fwd[v]:
                if not contracted[wi]:
                    deleted_neighbors[wi] += 1
                    del bwd[wi][v]
            fwd[v] = {}
            bwd[v] = {}

        if self._prescribed_order is not None:
            # Prescribed-order contraction (e.g. by coarsening level):
            # no priority queue at all — the order is the caller's
            # importance ranking, and correctness never depended on the
            # edge-difference heuristic anyway.
            for node in self._prescribed_order:
                v = self._index[node]
                contract(v, self._shortcuts_for(v, fwd, bwd, contracted))
            self._finalise(rank, order, aug, middle)
            return

        heap: list[tuple[int, int]] = []
        for v in range(n):
            shortcuts = self._shortcuts_for(v, fwd, bwd, contracted)
            heap.append((priority(v, shortcuts), v))
        heapify(heap)

        while heap:
            _, v = heappop(heap)
            if contracted[v]:
                continue
            # Lazy update: the stored priority may be stale; recompute
            # and only contract while still no worse than the runner-up.
            shortcuts = self._shortcuts_for(v, fwd, bwd, contracted)
            current = priority(v, shortcuts)
            if heap and current > heap[0][0]:
                heappush(heap, (current, v))
                continue
            contract(v, shortcuts)

        self._finalise(rank, order, aug, middle)

    def _finalise(
        self,
        rank: list[int],
        order: list[int],
        aug: dict[tuple[int, int], float],
        middle: dict[tuple[int, int], int | None],
    ) -> None:
        """Index the augmented graph for querying (shared by build/restore)."""
        n = len(self._nodes)
        self._rank = rank
        #: Node indices in decreasing rank order (the PHAST sweep order).
        self._order_desc = order[::-1]
        self._middle = {
            edge: mid for edge, mid in middle.items() if mid is not None
        }
        # Search adjacency over the augmented graph, split by direction
        # in rank space.  Upward edges climb (rank[head] > rank[tail]);
        # each set is indexed from both endpoints because the sweeps and
        # the two search directions need opposite views.
        self._up_out: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._up_in: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._down_out: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._down_in: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for (ui, vi), w in aug.items():
            if rank[vi] > rank[ui]:
                self._up_out[ui].append((vi, w))
                self._up_in[vi].append((ui, w))
            else:
                self._down_out[ui].append((vi, w))
                self._down_in[vi].append((ui, w))
        # Vectorised sweep kernel: the downward (forward PHAST) and
        # upward-in (reverse PHAST) edge sets as level-grouped numpy
        # arrays.  Built once here; the dict adjacency above stays the
        # source of truth for searches and path unpacking either way.
        self._sweeps: CHSweepKernel | None = None
        self._shared_pack: SharedArrayPack | None = None
        if self.kernel == "csr":
            self._sweeps = CHSweepKernel(
                n, self._order_desc, self._down_out, self._up_in
            )

    # ------------------------------------------------------------------
    # preprocessing persistence
    # ------------------------------------------------------------------
    @_locked
    def export_preprocessing(self) -> dict:
        """JSON-able snapshot of the contraction products.

        The payload carries everything :meth:`_restore` needs to stand
        the hierarchy back up without re-contracting: the node ids in
        contraction (rank) order, and every augmented edge as ``[u, v,
        weight, middle]`` (``middle`` is ``None`` for original edges,
        the contracted middle node id for shortcuts — kept so restored
        oracles can still unpack paths).
        """
        n = len(self._nodes)
        order_ids = [0] * n
        for idx, r in enumerate(self._rank):
            order_ids[r] = self._nodes[idx]
        edges: list[list] = []
        for ui in range(n):
            u = self._nodes[ui]
            for adjacency in (self._up_out[ui], self._down_out[ui]):
                for vi, w in adjacency:
                    mid = self._middle.get((ui, vi))
                    edges.append(
                        [u, self._nodes[vi], w, None if mid is None else self._nodes[mid]]
                    )
        return {"order": order_ids, "edges": edges}

    def _restore(self, payload: Mapping) -> None:
        """Rebuild the hierarchy from an :meth:`export_preprocessing` payload.

        Linear in the augmented graph — the witness searches and the
        priority-queue ordering, i.e. everything expensive about
        contraction, are skipped.  Raises ``ValueError`` when the
        payload does not cover exactly this graph's node set.
        """
        n = len(self._nodes)
        order_ids = payload.get("order")
        edge_rows = payload.get("edges")
        if not isinstance(order_ids, list) or not isinstance(edge_rows, list):
            raise ValueError("malformed CH preprocessing payload")
        try:
            # The order must be a true permutation of this graph's nodes
            # — duplicates would produce a non-permutation rank array
            # and silently wrong up/down edge classification.
            order_valid = (
                len(order_ids) == n
                and len(set(order_ids)) == n
                and all(node in self._index for node in order_ids)
            )
        except TypeError:
            order_valid = False
        if not order_valid:
            raise ValueError("CH preprocessing does not match this graph")
        rank = [0] * n
        order: list[int] = []
        for r, node in enumerate(order_ids):
            idx = self._index[node]
            rank[idx] = r
            order.append(idx)
        aug: dict[tuple[int, int], float] = {}
        middle: dict[tuple[int, int], int | None] = {}
        shortcuts = 0
        try:
            for u, v, weight, mid in edge_rows:
                key = (self._index[u], self._index[v])
                aug[key] = float(weight)
                if mid is None:
                    middle[key] = None
                else:
                    middle[key] = self._index[mid]
                    shortcuts += 1
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                "CH preprocessing payload references unknown nodes or "
                "malformed edges"
            ) from exc
        self._shortcuts_added = shortcuts
        self._finalise(rank, order, aug, middle)

    def _shortcuts_for(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
    ) -> list[tuple[int, int, float]]:
        """Shortcuts required to contract ``v`` from the remaining graph."""
        ins = [(u, w) for u, w in bwd[v].items() if not contracted[u]]
        outs = [(w, wt) for w, wt in fwd[v].items() if not contracted[w]]
        shortcuts: list[tuple[int, int, float]] = []
        if not ins or not outs:
            return shortcuts
        max_out = max(wt for _, wt in outs)
        for u, w_in in ins:
            witness = self._witness_search(u, v, w_in + max_out, fwd, contracted)
            for w, w_out in outs:
                if w == u:
                    continue
                through = w_in + w_out
                if witness.get(w, _INF) > through:
                    shortcuts.append((u, w, through))
        return shortcuts

    def _witness_search(
        self,
        source: int,
        excluded: int,
        limit: float,
        fwd: list[dict[int, float]],
        contracted: list[bool],
    ) -> dict[int, float]:
        """Hop- and distance-limited Dijkstra avoiding ``excluded``.

        Conservative on purpose: hop limit, distance limit and settle
        cap can all hide a genuine witness, which merely means an extra
        shortcut gets added — correctness never depends on this search
        being complete.
        """
        dist: dict[int, float] = {source: 0.0}
        hops: dict[int, int] = {source: 0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        hop_limit = self.witness_hop_limit
        settled = 0
        while heap:
            d, x = heappop(heap)
            if d > dist.get(x, _INF):
                continue
            settled += 1
            if settled > _WITNESS_SETTLE_LIMIT:
                break
            h = hops[x]
            if h >= hop_limit:
                continue
            for y, w in fwd[x].items():
                if y == excluded or contracted[y]:
                    continue
                nd = d + w
                if nd <= limit and nd < dist.get(y, _INF):
                    dist[y] = nd
                    hops[y] = h + 1
                    heappush(heap, (nd, y))
        return dist

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @_locked
    def travel_time(self, source: int, target: int) -> float:
        self._queries += 1
        if source == target:
            return 0.0
        key = (source, target)
        cached = self._pair_cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._cache_hits += 1
            self._pair_cache.move_to_end(key)
            if cached is None:
                raise UnreachableError(source, target)
            return cached
        self._cache_misses += 1
        distance, _, _, _ = self._bidirectional_upward(
            self._index[source], self._index[target]
        )
        self._remember(key, distance)
        if distance is None:
            raise UnreachableError(source, target)
        return distance

    @_locked
    def travel_times_from(self, source: int) -> Mapping[int, float]:
        """One-to-all distances via PHAST (upward search + downward sweep)."""
        self._queries += 1
        self._sssp_runs += 1
        if self._sweeps is not None:
            seeds = self._upward_search(self._index[source], self._up_out)
            arr = self._sweeps.run(self._sweeps.forward, seeds)
            idxs, values = finite_entries(arr)
            nodes = self._nodes
            return {
                nodes[idx]: value
                for idx, value in zip(idxs.tolist(), values.tolist())
            }
        dist = self._forward_upward_array(self._index[source])
        for u in self._order_desc:
            du = dist[u]
            if du == _INF:
                continue
            for v, w in self._down_out[u]:
                nd = du + w
                if nd < dist[v]:
                    dist[v] = nd
        return {
            self._nodes[idx]: d for idx, d in enumerate(dist) if d != _INF
        }

    @_locked
    def travel_times_to(self, target: int) -> Mapping[int, float]:
        """All-to-one distances via reverse PHAST (memoised per target).

        The backward upward search from ``target`` settles the nodes
        whose rank-descending paths reach it; the sweep in decreasing
        rank order then folds the ascending first half of every
        ``source -> apex -> target`` path in, one upward edge at a time.
        """
        self._queries += 1
        return self._arrivals_to(target)

    # ------------------------------------------------------------------
    # reverse-PHAST kernel primitives
    # ------------------------------------------------------------------
    @_locked
    def reverse_seed_map(self, target: int) -> dict[int, float]:
        """Backward upward search from ``target`` (internal node indices).

        The first stage of a reverse-PHAST query, identical under both
        kernels: a dict Dijkstra over the downward in-edges that settles
        the nodes whose rank-descending paths reach ``target``.  The
        result seeds :meth:`reverse_sweep`.  Exposed (with the sweep) as
        the kernel seam the ``csr_many_to_one_speedup`` benchmark and
        the kernel property tests measure.
        """
        return self._upward_search(self._index[target], self._down_in)

    @_locked
    def reverse_sweep(self, seeds: Mapping[int, float]):
        """Downward sweep from a :meth:`reverse_seed_map` result.

        Returns the running kernel's *native* arrival representation:
        the csr kernel answers a dense float64 row indexed by internal
        node index (``inf`` = unreachable), the dict kernel a mapping
        of public node id to arrival time.  This is the stage the csr
        kernel vectorises — the unit timed by the
        ``csr_many_to_one_speedup`` acceptance bar.
        """
        if self._sweeps is not None:
            return self._sweeps.run(self._sweeps.reverse, seeds).copy()
        dist = [_INF] * len(self._nodes)
        for idx, d in seeds.items():
            dist[idx] = d
        for u in self._order_desc:
            du = dist[u]
            if du == _INF:
                continue
            for v, w in self._up_in[u]:
                nd = w + du
                if nd < dist[v]:
                    dist[v] = nd
        return {
            self._nodes[idx]: d for idx, d in enumerate(dist) if d != _INF
        }

    def _arrival_entry(self, target: int) -> list:
        """Memoised ``[row, mapping]`` arrival pair (one miss per build).

        The csr kernel memoises the dense sweep row and materialises the
        public mapping lazily (:meth:`_arrivals_to`), so many-to-one
        consumers that only read a handful of sources never pay the
        O(nodes) dict conversion; the dict kernel stores its mapping
        directly and leaves the row slot ``None``.
        """
        entry = self._arrival_cache.get(target)
        if entry is not None:
            self._cache_hits += 1
            self._arrival_cache.move_to_end(target)
            return entry
        self._cache_misses += 1
        self._reverse_sssp_runs += 1
        native = self.reverse_sweep(self.reverse_seed_map(target))
        if self._sweeps is not None:
            entry = [native, None]
        else:
            entry = [None, native]
        self._arrival_cache[target] = entry
        if (
            self._arrival_cache_size is not None
            and len(self._arrival_cache) > self._arrival_cache_size
        ):
            self._arrival_cache.popitem(last=False)
            self._evictions += 1
        return entry

    def _arrivals_to(self, target: int) -> dict[int, float]:
        """Memoised reverse-PHAST arrival map keyed by public node id."""
        entry = self._arrival_entry(target)
        if entry[1] is None:
            idxs, values = finite_entries(entry[0])
            nodes = self._nodes
            entry[1] = {
                nodes[idx]: value
                for idx, value in zip(idxs.tolist(), values.tolist())
            }
        return entry[1]

    def _arrival_row(self, target: int):
        """Memoised dense arrival row (csr kernel; ``None`` under dict)."""
        return self._arrival_entry(target)[0]

    @_locked
    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        """Batched product queries via RPHAST-style target buckets.

        Every target contributes its (memoised) backward upward search
        space as bucket entries ``node -> (target, distance)``; one
        forward upward search per source then scans the buckets of the
        nodes it settles, so each additional pair costs a handful of
        bucket lookups instead of a graph search.  Wide single-target
        batches — the dispatch shape, many idle workers against one
        pickup — switch to one reverse-PHAST sweep instead, which is
        linear in the augmented graph and beats per-source searches past
        ``_MANY_TO_ONE_CUTOFF`` sources.  Pairs already memoised in the
        point-to-point cache skip their share of the work, and every
        answered pair is folded back into it.

        Miss accounting follows the one-miss-per-search convention: one
        per forward upward search run and one per target-side map built
        (inside the helpers) — not one per pending pair — so hit rates
        stay comparable with the lazy backend's.
        """
        source_list = list(dict.fromkeys(sources))
        target_list = list(dict.fromkeys(targets))
        self._batched_queries += len(source_list) * len(target_list)
        result: dict[tuple[int, int], float] = {}
        if not source_list or not target_list:
            return result
        pending_by_source: dict[int, list[int]] = {}
        needed_targets: list[int] = []
        needed_seen: set[int] = set()
        for s_node in source_list:
            pending: list[int] = []
            for t_node in target_list:
                if s_node == t_node:
                    result[(s_node, t_node)] = 0.0
                    continue
                key = (s_node, t_node)
                cached = self._pair_cache.get(key, _MISSING)
                if cached is not _MISSING:
                    self._cache_hits += 1
                    self._pair_cache.move_to_end(key)
                    if cached is not None:
                        result[key] = cached
                    continue
                pending.append(t_node)
                if t_node not in needed_seen:
                    needed_seen.add(t_node)
                    needed_targets.append(t_node)
            if pending:
                pending_by_source[s_node] = pending
        if pending_by_source:
            # Wide single-target batches (the dispatch shape) and targets
            # whose arrival map is already memoised are answered straight
            # from reverse PHAST — one linear sweep beats one upward
            # search per source past the cutoff; everything else goes
            # through the buckets.
            wide = (
                len(needed_targets) == 1
                and len(pending_by_source) >= _MANY_TO_ONE_CUTOFF
            )
            use_csr = self._sweeps is not None
            # Values are the kernel's native arrival representation: a
            # dense row (csr) read per source by index, or a node-keyed
            # mapping (dict).  Same floats either way — the sweeps relax
            # identical sums and min is order-independent.
            arrival_answers: dict[int, object] = {}
            bucket_targets: list[int] = []
            for t_node in needed_targets:
                if wide or t_node in self._arrival_cache:
                    if use_csr:
                        arrival_answers[t_node] = self._arrival_row(t_node)
                    else:
                        arrival_answers[t_node] = self._arrivals_to(t_node)
                else:
                    bucket_targets.append(t_node)
            buckets: dict[int, list[tuple[int, float]]] = {}
            csr_buckets: list[tuple[int, object, object]] = []
            if use_csr:
                # Per-target (nodes, dists) arrays: one vectorised
                # gather-and-min per (source, target) pair instead of a
                # Python loop over settled nodes.  Entries at nodes the
                # forward search never settles contribute +inf and drop
                # out of the min — exactly the pairs the dict scan skips.
                for t_node in bucket_targets:
                    nodes_arr, dists_arr = bucket_arrays(
                        self._target_buckets(t_node)
                    )
                    csr_buckets.append((t_node, nodes_arr, dists_arr))
            else:
                for t_node in bucket_targets:
                    for idx, d in self._target_buckets(t_node).items():
                        buckets.setdefault(idx, []).append((t_node, d))
            for s_node, pending in pending_by_source.items():
                bucket_pending = []
                for t_node in pending:
                    arrivals = arrival_answers.get(t_node)
                    if arrivals is None:
                        bucket_pending.append(t_node)
                        continue
                    if use_csr:
                        row_value = float(arrivals[self._index[s_node]])
                        value = None if row_value == _INF else row_value
                    else:
                        value = arrivals.get(s_node)
                    self._remember((s_node, t_node), value)
                    if value is not None:
                        result[(s_node, t_node)] = value
                if not bucket_pending:
                    continue
                # One miss per graph search actually run, mirroring the
                # lazy backend's one-miss-per-map-built convention (the
                # target-side maps charge their own inside the helpers).
                self._cache_misses += 1
                best: dict[int, float] = {}
                forward = self._upward_search(self._index[s_node], self._up_out)
                if use_csr:
                    pending_set = set(bucket_pending)
                    dist_f = self._sweeps.seed_buffer(forward)
                    for t_node, nodes_arr, dists_arr in csr_buckets:
                        if t_node not in pending_set or not len(nodes_arr):
                            continue
                        self._bucket_scans += len(nodes_arr)
                        value = float((dist_f[nodes_arr] + dists_arr).min())
                        if value != _INF:
                            best[t_node] = value
                else:
                    for idx, df in forward.items():
                        entries = buckets.get(idx)
                        if not entries:
                            continue
                        self._bucket_scans += len(entries)
                        for t_node, db in entries:
                            nd = df + db
                            if nd < best.get(t_node, _INF):
                                best[t_node] = nd
                for t_node in bucket_pending:
                    value = best.get(t_node)
                    self._remember((s_node, t_node), value)
                    if value is not None:
                        result[(s_node, t_node)] = value
        self._queries += len(result)
        return result

    @_locked
    def shortest_path(self, source: int, target: int) -> list[int]:
        """Node sequence of a shortest path, by unpacking shortcuts.

        The bidirectional upward search is rerun with parent tracking,
        the up and down halves are stitched at the meeting node, and
        every shortcut edge is expanded through its recorded middle node
        until only original edges remain.
        """
        self._queries += 1
        if source == target:
            return [source]
        s, t = self._index[source], self._index[target]
        distance, meet, parent_f, parent_b = self._bidirectional_upward(
            s, t, with_parents=True
        )
        if distance is None or meet is None:
            raise UnreachableError(source, target)
        ascent: list[int] = [meet]
        while ascent[-1] != s:
            ascent.append(parent_f[ascent[-1]])
        ascent.reverse()
        while ascent[-1] != t:
            ascent.append(parent_b[ascent[-1]])
        path = [s]
        for a, b in zip(ascent, ascent[1:]):
            self._unpack_edge(a, b, path)
        return [self._nodes[idx] for idx in path]

    def _unpack_edge(self, a: int, b: int, out: list[int]) -> None:
        """Append the original-node expansion of edge ``a -> b`` (sans ``a``)."""
        stack = [(a, b)]
        while stack:
            u, v = stack.pop()
            mid = self._middle.get((u, v))
            if mid is None:
                out.append(v)
            else:
                # LIFO stack: push the second half first so the first
                # half is expanded (and emitted) first.
                stack.append((mid, v))
                stack.append((u, mid))

    # ------------------------------------------------------------------
    # cache management and instrumentation
    # ------------------------------------------------------------------
    @_locked
    def clear(self) -> None:
        self._pair_cache.clear()
        self._bucket_cache.clear()
        self._arrival_cache.clear()

    @_locked
    def cache_info(self) -> CacheInfo:
        """Summary of the point-to-point result cache.

        ``hits``/``misses`` cover the pair cache and the per-target
        bucket cache (the uniform counters); ``maxsize``/``currsize``
        describe the pair cache, with the bucket cache's occupancy
        reported through ``stats().extras`` (``bucket_cached_targets``).
        """
        return CacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            maxsize=self._pair_cache_size,
            currsize=len(self._pair_cache),
        )

    # ------------------------------------------------------------------
    # shared-memory protocol (process-mode dispatch shards)
    # ------------------------------------------------------------------
    @_locked
    def share_memory(self) -> dict | None:
        """Move the sweep arrays into shared memory; return the handle.

        Only the csr kernel has flat arrays to share; the dict kernel
        answers ``None`` and shards fall back to fork-inherited copies.
        Idempotent: a second call returns the existing handle.
        """
        if self._sweeps is None:
            return None
        if self._shared_pack is None:
            pack = SharedArrayPack.create(self._sweeps.export_arrays())
            # The parent serves its own queries from the shared views
            # too — one copy of the arrays, every process attached.
            self._sweeps.replace_arrays(pack.arrays)
            self._shared_pack = pack
        return {
            "kind": "ch-sweeps",
            "segments": self._shared_pack.handle(),
        }

    @_locked
    def adopt_shared(self, handle: Mapping) -> None:
        """Attach this (child-process) oracle to shared sweep arrays."""
        if self._sweeps is None or handle.get("kind") != "ch-sweeps":
            return
        pack = SharedArrayPack.attach(handle["segments"])
        self._sweeps.replace_arrays(pack.arrays)
        # Keep the pack referenced so the mappings outlive this call;
        # the child's copy dies with the process, the parent unlinks.
        self._shared_pack = pack

    @_locked
    def release_shared(self) -> None:
        """Detach from shared memory and destroy the segments (creator).

        The parent copies the arrays back to private memory first, so
        the oracle keeps answering after the engine that shared it shuts
        down; segments are unlinked exactly once.
        """
        if self._shared_pack is None:
            return
        pack = self._shared_pack
        self._shared_pack = None
        if self._sweeps is not None:
            self._sweeps.replace_arrays(pack.copies())
        pack.close()
        pack.unlink()

    @_locked
    def _extra_stats(self) -> dict[str, float]:
        return {
            "shortcuts_added": float(self._shortcuts_added),
            "upward_settles": float(self._upward_settles),
            "bucket_scans": float(self._bucket_scans),
            "bucket_cached_targets": float(len(self._bucket_cache)),
            "arrival_cached_targets": float(len(self._arrival_cache)),
            "preprocessing_from_cache": float(self._loaded_from_cache),
            "cache_load_failures": float(self.cache_load_failures),
            # Set by the registry's cached-build path only; 0 when the
            # hierarchy was contracted without an on-disk cache.
            "cache_lock_timed_out": float(
                getattr(self, "cache_lock_timed_out", 0)
            ),
            "cache_lock_took_over_stale": float(
                getattr(self, "cache_lock_took_over_stale", 0)
            ),
        }

    # ------------------------------------------------------------------
    # search internals
    # ------------------------------------------------------------------
    def _upward_search(
        self, start: int, adjacency: list[list[tuple[int, float]]]
    ) -> dict[int, float]:
        """Dijkstra over a rank-climbing adjacency (counted).

        With ``self._up_out`` this is the forward upward search from a
        source; with ``self._down_in`` it is the backward upward search
        from a target (downward edges traversed in reverse), whose
        settled map is ``node -> distance of that rank-descending path
        to start``.
        """
        dist: dict[int, float] = {start: 0.0}
        heap: list[tuple[float, int]] = [(0.0, start)]
        settles = 0
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            settles += 1
            for v, w in adjacency[u]:
                nd = d + w
                if nd < dist.get(v, _INF):
                    dist[v] = nd
                    heappush(heap, (nd, v))
        self._upward_settles += settles
        return dist

    def _forward_upward_array(self, start: int) -> list[float]:
        """Forward upward search into a dense array (PHAST's first phase)."""
        dist = [_INF] * len(self._nodes)
        dist[start] = 0.0
        heap: list[tuple[float, int]] = [(0.0, start)]
        up_out = self._up_out
        settles = 0
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            settles += 1
            for v, w in up_out[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        self._upward_settles += settles
        return dist

    def _target_buckets(self, target: int) -> dict[int, float]:
        """Memoised backward upward search space of ``target``."""
        cached = self._bucket_cache.get(target)
        if cached is not None:
            self._cache_hits += 1
            self._bucket_cache.move_to_end(target)
            return cached
        self._cache_misses += 1
        self._reverse_sssp_runs += 1
        buckets = self._upward_search(self._index[target], self._down_in)
        self._bucket_cache[target] = buckets
        if (
            self.bucket_cache_size is not None
            and len(self._bucket_cache) > self.bucket_cache_size
        ):
            self._bucket_cache.popitem(last=False)
            self._evictions += 1
        return buckets

    def _bidirectional_upward(
        self, s: int, t: int, with_parents: bool = False
    ) -> tuple[
        float | None, int | None, dict[int, int], dict[int, int]
    ]:
        """Bidirectional upward search; returns (distance, meeting node,
        forward parents, backward parents) — distance ``None`` when
        unreachable.

        Both frontiers only climb in rank, and a side stops once its
        minimum key can no longer beat the best meeting distance.  The
        meeting check runs at settle time in either direction, which is
        sufficient: a meeting node whose distance on one side never
        settles below the current best cannot improve it.
        """
        self._pp_searches += 1
        dist_f: dict[int, float] = {s: 0.0}
        dist_b: dict[int, float] = {t: 0.0}
        parent_f: dict[int, int] = {}
        parent_b: dict[int, int] = {}
        heap_f: list[tuple[float, int]] = [(0.0, s)]
        heap_b: list[tuple[float, int]] = [(0.0, t)]
        best = _INF
        meet: int | None = None
        settles = 0
        while True:
            f_live = bool(heap_f) and heap_f[0][0] < best
            b_live = bool(heap_b) and heap_b[0][0] < best
            if not f_live and not b_live:
                break
            forward = f_live and (not b_live or heap_f[0][0] <= heap_b[0][0])
            if forward:
                heap, dist, other, parent = heap_f, dist_f, dist_b, parent_f
                adjacency = self._up_out
            else:
                heap, dist, other, parent = heap_b, dist_b, dist_f, parent_b
                adjacency = self._down_in
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            settles += 1
            du_other = other.get(u)
            if du_other is not None and d + du_other < best:
                best = d + du_other
                meet = u
            for v, w in adjacency[u]:
                nd = d + w
                if nd < dist.get(v, _INF):
                    dist[v] = nd
                    if with_parents:
                        parent[v] = u
                    heappush(heap, (nd, v))
        self._upward_settles += settles
        if best == _INF:
            return None, None, parent_f, parent_b
        return best, meet, parent_f, parent_b

    # ------------------------------------------------------------------
    # pair-cache internals
    # ------------------------------------------------------------------
    def _remember(self, key: tuple[int, int], distance: float | None) -> None:
        self._pair_cache[key] = distance
        if (
            self._pair_cache_size is not None
            and len(self._pair_cache) > self._pair_cache_size
        ):
            self._pair_cache.popitem(last=False)
            self._evictions += 1
