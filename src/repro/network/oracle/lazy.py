"""Cached-Dijkstra backend: the seed behaviour with a bounded cache.

This is what ``RoadNetwork`` always did — run a full single-source
Dijkstra the first time a source is queried and answer every later query
from that source with a dictionary lookup — except the per-source cache
is now an LRU bounded by ``max_sources``, so city-scale workloads that
touch many distinct sources no longer grow the cache without limit.

On top of the forward per-source cache the backend keeps a *reverse*
per-target cache: one Dijkstra on the reversed graph from a target
yields ``source -> d(source, target)`` for every source at once, which
is exactly the many-sources-to-one-target shape of the dispatch hot
path ("how far is each idle worker from this pickup?").  A batched
query picks whichever direction needs fewer new Dijkstra runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Mapping

import networkx as nx

from ...exceptions import UnreachableError
from .base import CacheInfo, DistanceOracle

#: Default bound on the number of cached single-source distance maps.
DEFAULT_MAX_SOURCES = 1024


class LazyDijkstraOracle(DistanceOracle):
    """On-demand single-source Dijkstra with an LRU-bounded result cache.

    Parameters
    ----------
    graph:
        Directed graph with ``travel_time`` edge weights.
    max_sources:
        Maximum number of source distance maps kept alive; ``None``
        means unbounded (the seed behaviour).
    max_targets:
        Maximum number of reverse per-target distance maps kept alive;
        defaults to ``max_sources``.
    """

    name = "lazy"

    def __init__(
        self,
        graph: nx.DiGraph,
        max_sources: int | None = DEFAULT_MAX_SOURCES,
        max_targets: int | None = None,
    ) -> None:
        super().__init__(graph)
        if max_sources is not None and max_sources < 1:
            raise ValueError("max_sources must be at least 1 (or None)")
        if max_targets is not None and max_targets < 1:
            raise ValueError("max_targets must be at least 1 (or None)")
        self._max_sources = max_sources
        self._max_targets = max_targets if max_targets is not None else max_sources
        self._cache: OrderedDict[int, dict[int, float]] = OrderedDict()
        self._rcache: OrderedDict[int, dict[int, float]] = OrderedDict()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def travel_time(self, source: int, target: int) -> float:
        self._queries += 1
        if source == target:
            return 0.0
        distances = self._cache.get(source)
        if distances is not None:
            self._cache_hits += 1
            self._cache.move_to_end(source)
            if target not in distances:
                raise UnreachableError(source, target)
            return distances[target]
        # A reverse map built for this target answers the pair without a
        # new forward Dijkstra (the dispatch hot path primes these).
        arrivals = self._rcache.get(target)
        if arrivals is not None:
            self._cache_hits += 1
            self._rcache.move_to_end(target)
            if source not in arrivals:
                raise UnreachableError(source, target)
            return arrivals[source]
        distances = self._distances_from(source)
        if target not in distances:
            raise UnreachableError(source, target)
        return distances[target]

    def travel_times_from(self, source: int) -> Mapping[int, float]:
        self._queries += 1
        return self._distances_from(source)

    def travel_times_to(self, target: int) -> Mapping[int, float]:
        self._queries += 1
        return self._arrivals_to(target)

    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        source_list = list(dict.fromkeys(sources))
        target_list = list(dict.fromkeys(targets))
        self._batched_queries += len(source_list) * len(target_list)
        result: dict[tuple[int, int], float] = {}
        if not source_list or not target_list:
            return result
        # Answer the block in whichever direction needs fewer new
        # Dijkstra runs: per-source forward maps or per-target reverse
        # maps.  The canonical dispatch batch (many workers, one pickup)
        # costs a single reverse run instead of one forward run per
        # distinct worker location.
        missing_forward = sum(1 for s in source_list if s not in self._cache)
        missing_reverse = sum(1 for t in target_list if t not in self._rcache)
        if missing_reverse < missing_forward:
            for target in target_list:
                arrivals = self._arrivals_to(target)
                for source in source_list:
                    if source == target:
                        result[(source, target)] = 0.0
                    elif source in arrivals:
                        result[(source, target)] = arrivals[source]
        else:
            for source in source_list:
                distances = self._distances_from(source)
                for target in target_list:
                    if source == target:
                        result[(source, target)] = 0.0
                    elif target in distances:
                        result[(source, target)] = distances[target]
        self._queries += len(result)
        return result

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._cache.clear()
        self._rcache.clear()
        self._drop_reverse_graph()

    def cache_info(self) -> CacheInfo:
        """Summary of the forward per-source cache.

        ``hits``/``misses`` cover both directions (they are the uniform
        counters); ``maxsize``/``currsize`` describe the forward cache
        only so the ``currsize <= maxsize`` contract holds.  The reverse
        cache's occupancy is reported through ``stats().extras``
        (``reverse_cached_targets``).
        """
        return CacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            maxsize=self._max_sources,
            currsize=len(self._cache),
        )

    def _extra_stats(self) -> dict[str, float]:
        return {
            "forward_cached_sources": float(len(self._cache)),
            "reverse_cached_targets": float(len(self._rcache)),
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _distances_from(self, source: int) -> dict[int, float]:
        cached = self._cache.get(source)
        if cached is not None:
            self._cache_hits += 1
            self._cache.move_to_end(source)
            return cached
        self._cache_misses += 1
        distances = self._dijkstra_from(source)
        self._cache[source] = distances
        if self._max_sources is not None and len(self._cache) > self._max_sources:
            self._cache.popitem(last=False)
            self._evictions += 1
        return distances

    def _arrivals_to(self, target: int) -> dict[int, float]:
        cached = self._rcache.get(target)
        if cached is not None:
            self._cache_hits += 1
            self._rcache.move_to_end(target)
            return cached
        self._cache_misses += 1
        arrivals = self._dijkstra_to(target)
        self._rcache[target] = arrivals
        if self._max_targets is not None and len(self._rcache) > self._max_targets:
            self._rcache.popitem(last=False)
            self._evictions += 1
        return arrivals
