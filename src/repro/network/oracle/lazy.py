"""Cached-Dijkstra backend: the seed behaviour with a bounded cache.

This is what ``RoadNetwork`` always did — run a full single-source
Dijkstra the first time a source is queried and answer every later query
from that source with a dictionary lookup — except the per-source cache
is now an LRU bounded by ``max_sources``, so city-scale workloads that
touch many distinct sources no longer grow the cache without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Mapping

import networkx as nx

from ...exceptions import UnreachableError
from .base import CacheInfo, DistanceOracle

#: Default bound on the number of cached single-source distance maps.
DEFAULT_MAX_SOURCES = 1024


class LazyDijkstraOracle(DistanceOracle):
    """On-demand single-source Dijkstra with an LRU-bounded result cache.

    Parameters
    ----------
    graph:
        Directed graph with ``travel_time`` edge weights.
    max_sources:
        Maximum number of source distance maps kept alive; ``None``
        means unbounded (the seed behaviour).
    """

    name = "lazy"

    def __init__(
        self, graph: nx.DiGraph, max_sources: int | None = DEFAULT_MAX_SOURCES
    ) -> None:
        super().__init__(graph)
        if max_sources is not None and max_sources < 1:
            raise ValueError("max_sources must be at least 1 (or None)")
        self._max_sources = max_sources
        self._cache: OrderedDict[int, dict[int, float]] = OrderedDict()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def travel_time(self, source: int, target: int) -> float:
        self._queries += 1
        if source == target:
            return 0.0
        distances = self._distances_from(source)
        if target not in distances:
            raise UnreachableError(source, target)
        return distances[target]

    def travel_times_from(self, source: int) -> Mapping[int, float]:
        self._queries += 1
        return self._distances_from(source)

    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        source_list = list(dict.fromkeys(sources))
        target_list = list(dict.fromkeys(targets))
        result: dict[tuple[int, int], float] = {}
        for source in source_list:
            distances = self._distances_from(source)
            for target in target_list:
                self._queries += 1
                self._batched_queries += 1
                if source == target:
                    result[(source, target)] = 0.0
                elif target in distances:
                    result[(source, target)] = distances[target]
        return result

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._cache.clear()

    def cache_info(self) -> CacheInfo:
        return CacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            maxsize=self._max_sources,
            currsize=len(self._cache),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _distances_from(self, source: int) -> dict[int, float]:
        cached = self._cache.get(source)
        if cached is not None:
            self._cache_hits += 1
            self._cache.move_to_end(source)
            return cached
        self._cache_misses += 1
        distances = self._dijkstra_from(source)
        self._cache[source] = distances
        if self._max_sources is not None and len(self._cache) > self._max_sources:
            self._cache.popitem(last=False)
            self._evictions += 1
        return distances
