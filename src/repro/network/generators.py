"""Synthetic road-network generators.

The paper evaluates on the road networks of New York City, Chengdu and
Xi'an.  Those map extracts are not bundled here, so the generators below
produce synthetic networks with the structural properties the WATTER
algorithms care about:

* ``grid_city`` — a rectangular lattice with per-edge travel times, the
  workhorse for the CDC/XIA-like workloads,
* ``manhattan_like_city`` — a tall, narrow lattice with a fast "avenue"
  axis, mimicking the elongated, dense Manhattan street grid used by the
  NYC workload,
* ``radial_city`` — ring-and-spoke topology useful for robustness tests,
* ``large_city`` — a city-scale lattice (10^5+ nodes) with a fast
  arterial sub-grid, built in O(V+E) for the coarsening/overlay layer,
* ``example_network`` — the exact 6-node / 7-edge network of Figure 1
  and Example 1, used to validate the strategies end-to-end.
"""

from __future__ import annotations

import math
import random

import networkx as nx

from ..exceptions import ConfigurationError
from .graph import RoadNetwork, build_network


def grid_city(
    rows: int = 20,
    cols: int = 20,
    edge_travel_time: float = 60.0,
    jitter: float = 0.2,
    seed: int = 0,
) -> RoadNetwork:
    """A ``rows x cols`` lattice with jittered per-edge travel times.

    Parameters
    ----------
    rows, cols:
        Lattice dimensions.
    edge_travel_time:
        Mean travel time (seconds) of one block.
    jitter:
        Relative uniform jitter applied to each edge's travel time, so
        shortest paths are not all exactly grid-aligned.
    seed:
        Seed for the jitter.
    """
    if rows < 2 or cols < 2:
        raise ConfigurationError("grid_city needs at least a 2x2 lattice")
    if not 0 <= jitter < 1:
        raise ConfigurationError("jitter must lie in [0, 1)")
    rng = random.Random(seed)
    nodes = []
    edges = []
    for r in range(rows):
        for c in range(cols):
            nodes.append((r * cols + c, float(c), float(r)))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1, _jittered(edge_travel_time, jitter, rng)))
            if r + 1 < rows:
                edges.append((node, node + cols, _jittered(edge_travel_time, jitter, rng)))
    return build_network(nodes, edges)


def manhattan_like_city(
    rows: int = 40,
    cols: int = 8,
    avenue_travel_time: float = 45.0,
    street_travel_time: float = 75.0,
    jitter: float = 0.15,
    seed: int = 0,
) -> RoadNetwork:
    """An elongated lattice with fast north-south "avenues".

    The NYC yellow-taxi demand the paper uses is concentrated in the
    long, narrow Manhattan grid where travelling along an avenue is
    faster than crossing streets.  The generator reproduces both the
    aspect ratio and the travel-time anisotropy.
    """
    if rows < 2 or cols < 2:
        raise ConfigurationError("manhattan_like_city needs at least a 2x2 lattice")
    rng = random.Random(seed)
    nodes = []
    edges = []
    for r in range(rows):
        for c in range(cols):
            nodes.append((r * cols + c, float(c), float(r)))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append(
                    (node, node + 1, _jittered(street_travel_time, jitter, rng))
                )
            if r + 1 < rows:
                edges.append(
                    (node, node + cols, _jittered(avenue_travel_time, jitter, rng))
                )
    return build_network(nodes, edges)


def radial_city(
    rings: int = 5,
    spokes: int = 8,
    ring_travel_time: float = 90.0,
    spoke_travel_time: float = 60.0,
    seed: int = 0,
) -> RoadNetwork:
    """A ring-and-spoke city centred on a single hub node.

    Node 0 is the centre; node ``1 + ring*spokes + spoke`` lies on the
    given ring/spoke.  Useful for stress-testing routing on non-lattice
    topologies.
    """
    if rings < 1 or spokes < 3:
        raise ConfigurationError("radial_city needs >=1 ring and >=3 spokes")
    rng = random.Random(seed)
    nodes = [(0, 0.0, 0.0)]
    edges = []
    for ring in range(rings):
        radius = float(ring + 1)
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            node_id = 1 + ring * spokes + spoke
            nodes.append((node_id, radius * math.cos(angle), radius * math.sin(angle)))
            # connect along the ring
            next_id = 1 + ring * spokes + (spoke + 1) % spokes
            edges.append((node_id, next_id, _jittered(ring_travel_time, 0.1, rng)))
            # connect inward (to previous ring or to the hub)
            inner_id = 0 if ring == 0 else 1 + (ring - 1) * spokes + spoke
            edges.append((inner_id, node_id, _jittered(spoke_travel_time, 0.1, rng)))
    return build_network(nodes, edges)


def large_city(
    rows: int = 320,
    cols: int = 320,
    edge_travel_time: float = 60.0,
    arterial_period: int = 8,
    arterial_factor: float = 0.5,
    jitter: float = 0.2,
    seed: int = 0,
) -> RoadNetwork:
    """A city-scale lattice with a faster arterial sub-grid.

    The default 320x320 shape gives 102 400 nodes / ~408k directed
    edges — the scale the coarsening layer and the ``overlay`` backend
    exist for.  Every ``arterial_period``-th row and column is an
    arterial whose edges cost ``arterial_factor`` of a normal block, so
    shortest paths concentrate on a sparse fast sub-grid the way they
    do on real road hierarchies (and the way the coarsener's merge cost
    expects: side-street nodes are cheap to absorb, arterial
    intersections survive to the coarse levels).

    Construction is one pass over nodes and one over edges — O(V+E)
    time and memory, no pairwise or quadratic work — so the generator
    stays usable at 10^6 nodes.
    """
    if rows < 2 or cols < 2:
        raise ConfigurationError("large_city needs at least a 2x2 lattice")
    if not 0 <= jitter < 1:
        raise ConfigurationError("jitter must lie in [0, 1)")
    if arterial_period < 2:
        raise ConfigurationError("arterial_period must be at least 2")
    if not 0 < arterial_factor <= 1:
        raise ConfigurationError("arterial_factor must lie in (0, 1]")
    rng = random.Random(seed)
    nodes = []
    edges = []
    for r in range(rows):
        for c in range(cols):
            nodes.append((r * cols + c, float(c), float(r)))
    for r in range(rows):
        on_arterial_row = r % arterial_period == 0
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                # Eastward edges run along row r: fast on arterial rows.
                base = edge_travel_time * (
                    arterial_factor if on_arterial_row else 1.0
                )
                edges.append((node, node + 1, _jittered(base, jitter, rng)))
            if r + 1 < rows:
                # Southward edges run along column c.
                base = edge_travel_time * (
                    arterial_factor if c % arterial_period == 0 else 1.0
                )
                edges.append((node, node + cols, _jittered(base, jitter, rng)))
    return build_network(nodes, edges)


def example_network() -> RoadNetwork:
    """The 6-node, 7-edge road network of Figure 1 / Example 1.

    Nodes are labelled ``a..f`` mapped to ids 0..5; every edge takes one
    minute (60 seconds), matching the example's unit travel times.
    """
    labels = {name: idx for idx, name in enumerate("abcdef")}
    coordinates = {
        "a": (0.0, 1.0),
        "b": (1.0, 2.0),
        "c": (1.0, 0.0),
        "d": (2.0, 1.0),
        "e": (3.0, 2.0),
        "f": (3.0, 0.0),
    }
    edge_names = [
        ("a", "b"),
        ("a", "c"),
        ("b", "d"),
        ("c", "d"),
        ("d", "e"),
        ("d", "f"),
        ("e", "f"),
    ]
    nodes = [(labels[name], x, y) for name, (x, y) in coordinates.items()]
    edges = [(labels[u], labels[v], 60.0) for u, v in edge_names]
    return build_network(nodes, edges)


def example_node(label: str) -> int:
    """Map an Example 1 node label (``'a'``..``'f'``) to its node id."""
    if label not in "abcdef" or len(label) != 1:
        raise ConfigurationError(f"unknown example node label {label!r}")
    return "abcdef".index(label)


def from_networkx(graph: nx.Graph) -> RoadNetwork:
    """Wrap an arbitrary networkx graph as a :class:`RoadNetwork`.

    Provided so users with a real map extract (e.g. from osmnx) can feed
    it straight into the library — the graph just needs ``travel_time``
    edge attributes and ``x``/``y`` node attributes.
    """
    return RoadNetwork(graph)


def _jittered(value: float, jitter: float, rng: random.Random) -> float:
    if jitter == 0:
        return value
    return value * (1.0 + rng.uniform(-jitter, jitter))
