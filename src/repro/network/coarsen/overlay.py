"""Bounded-error overlay oracle over a coarsening hierarchy.

The ``overlay`` backend answers full-graph distance queries from a
much smaller coarse graph, with a **certified** relative error bound:

* **Lower bound.**  Any full-graph path projects onto a coarse walk —
  intra-supernode edges cost >= 0 and every crossing edge weighs at
  least its coarse edge's min-over-crossing weight — so the coarse
  shortest distance ``d_c = d_coarse(R(u), R(v))`` can never exceed
  the true distance.  (The same argument makes coarse-unreachable
  imply base-unreachable, so :class:`UnreachableError` verdicts are
  exact.)

* **Upper bound.**  A coarse shortest path is inflated back into a
  genuine full-graph path: every coarse edge records the *base* edge
  realising its weight, and per-supernode local Dijkstras connect the
  entry node to the next crossing edge's tail inside each cluster.
  The inflated cost ``U`` is the cost of an actual path, so
  ``d_c <= d(u, v) <= U``.

A query is answered with the offset estimate ``off_out(u) + d_c +
off_in(v)`` clamped into ``[d_c, U]`` — whenever the certified gap
``(U - d_c) / d_c`` fits the configured ``error_bound``, any value in
that interval is provably within the bound of the truth.  When the gap
is too wide (or the corridor is broken by one-way clusters) the query
**refines exactly**: a full-graph Dijkstra pruned at ``U``.  The
relative-error property test therefore cannot flake — the bound is
enforced per answer, not hoped for on average.

``refine=True`` turns every query into the exact path (the
"exact-refinement mode" of the hierarchy): distances equal Dijkstra's
to the float, while readiness still costs only the coarsening plus the
inner oracle on the coarse graph.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from heapq import heappop, heappush
from typing import Any, Iterable, Mapping

import networkx as nx

from ...exceptions import UnreachableError
from ..oracle.base import CacheInfo, DistanceOracle
from .coarsener import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    DEFAULT_LEVELS,
    DEFAULT_STOP_RATIO,
    CoarseningHierarchy,
    MultilevelCoarsener,
)

_INF = float("inf")

#: Default certified relative error bound of estimated answers.
DEFAULT_ERROR_BOUND = 0.25

#: Default LRU bound on memoised (source, target) answers.
DEFAULT_PAIR_CACHE_SIZE = 200_000

#: LRU bound on memoised coarse shortest paths (per representative pair).
_COARSE_PATH_CACHE_SIZE = 4096

#: LRU bound on memoised intra-cluster legs (per (anchor, from, to)).
_LEG_CACHE_SIZE = 65_536

#: Sentinel distinguishing "not cached" from a cached unreachable verdict.
_MISSING = object()


class OverlayOracle(DistanceOracle):
    """Distance oracle projecting queries through a coarsening hierarchy.

    Parameters
    ----------
    graph:
        The *full* directed graph with ``travel_time`` weights (the
        oracle attaches to the network like any other backend).
    hierarchy:
        A prebuilt :class:`CoarseningHierarchy` over ``graph`` (e.g.
        loaded from the oracle cache); ``None`` builds one here from
        ``levels``/``alpha``/``beta``/``stop_ratio``.
    levels / alpha / beta / stop_ratio:
        Coarsening knobs when the hierarchy is built internally.
    error_bound:
        Certified relative error ceiling of estimated answers; queries
        whose certified gap exceeds it refine exactly.
    refine:
        ``True`` answers *every* query with the exact pruned Dijkstra
        (distances identical to plain Dijkstra); ``False`` (default)
        estimates within the bound and refines only when forced.
    inner_backend:
        Registry name of the oracle answering coarse-graph queries
        (``"ch"`` by default — contraction on a few thousand coarse
        nodes is seconds, which is the whole point).
    cache_size / witness_hop_limit / cache_dir / kernel / seed:
        Forwarded to the inner backend's factory.  ``cache_dir`` also
        lets the inner CH persist its coarse-graph contraction (keyed
        by the *coarse* graph's signature, so it reuses across runs).
    pair_cache_size:
        LRU bound on memoised final answers.
    """

    name = "overlay"

    #: Queries memoise into LRU caches guarded by a reentrant lock, so
    #: the parallel dispatch engine's thread shards can share one
    #: overlay oracle without external locking.
    thread_safe_queries = True

    def __init__(
        self,
        graph: nx.DiGraph,
        hierarchy: CoarseningHierarchy | None = None,
        levels: int = DEFAULT_LEVELS,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
        stop_ratio: float = DEFAULT_STOP_RATIO,
        error_bound: float = DEFAULT_ERROR_BOUND,
        refine: bool = False,
        inner_backend: str = "ch",
        cache_size: int | None = None,
        witness_hop_limit: int | None = None,
        cache_dir: str | None = None,
        kernel: str | None = None,
        seed: int = 0,
        pair_cache_size: int | None = DEFAULT_PAIR_CACHE_SIZE,
    ) -> None:
        super().__init__(graph)
        if error_bound < 0:
            raise ValueError("error_bound must be non-negative")
        started = time.perf_counter()
        if hierarchy is None:
            hierarchy = MultilevelCoarsener(
                graph,
                levels=levels,
                alpha=alpha,
                beta=beta,
                stop_ratio=stop_ratio,
            ).build()
        self.hierarchy = hierarchy
        self.coarsen_levels = hierarchy.params.levels
        self.coarsen_alpha = hierarchy.params.alpha
        self.coarsen_beta = hierarchy.params.beta
        self.error_bound = float(error_bound)
        self.refine_mode = bool(refine)
        #: Set by the registry factory when the hierarchy came from the
        #: on-disk oracle cache instead of being coarsened here.
        self.hierarchy_from_cache = False
        self._pair_cache_size = pair_cache_size
        # `None` marks a memoised *unreachable* verdict.
        self._pair_cache: OrderedDict[tuple[Any, Any], float | None] = (
            OrderedDict()
        )
        # (rep_u, rep_v) -> coarse node path | None (unreachable).
        self._coarse_paths: OrderedDict[tuple[Any, Any], list | None] = (
            OrderedDict()
        )
        # (anchor, from, to) -> intra-cluster distance (inf = no path).
        self._legs: OrderedDict[tuple[Any, Any, Any], float] = OrderedDict()
        self._refined_queries = 0
        self._gap_sum = 0.0
        self._gap_count = 0
        self._gap_max = 0.0
        self._query_lock = threading.RLock()

        # Inner oracle over the coarse graph.  Deferred import: the
        # registry imports this module lazily from its factory, so a
        # top-level import back into the registry would be circular at
        # first use.
        from ..oracle.registry import create_oracle

        coarse = hierarchy.coarse_graph
        self.inner = create_oracle(
            inner_backend,
            coarse,
            cache_size=cache_size,
            witness_hop_limit=witness_hop_limit,
            cache_dir=cache_dir,
            seed=seed,
            kernel=kernel,
        )
        self.kernel = getattr(self.inner, "kernel", "dict")
        self.requested_kernel = kernel if kernel is not None else "auto"

        # Per-node offsets to/from the cluster anchor: the correction
        # terms of the estimate.  One local Dijkstra pair per cluster,
        # each linear in the cluster — O(V) overall.
        self._off_in: dict[Any, float] = {}
        self._off_out: dict[Any, float] = {}
        for anchor in coarse.nodes:
            from_anchor = hierarchy.local_distances(anchor, anchor)
            to_anchor = hierarchy.local_distances(anchor, anchor, reverse=True)
            for member in hierarchy.members(anchor):
                self._off_in[member] = from_anchor.get(member, _INF)
                self._off_out[member] = to_anchor.get(member, _INF)
        self._precompute_seconds = time.perf_counter() - started

    @property
    def precompute_seconds(self) -> float:
        """Wall-clock readiness cost: coarsening + inner oracle + offsets."""
        return self._precompute_seconds

    # ------------------------------------------------------------------
    # query interface
    # ------------------------------------------------------------------
    def travel_time(self, source: Any, target: Any) -> float:
        with self._query_lock:
            self._queries += 1
            if source == target:
                return 0.0
            key = (source, target)
            cached = self._pair_cache.get(key, _MISSING)
            if cached is not _MISSING:
                self._cache_hits += 1
                self._pair_cache.move_to_end(key)
                if cached is None:
                    raise UnreachableError(source, target)
                return cached  # type: ignore[return-value]
            self._cache_misses += 1
            value = self._answer(source, target)
            self._remember(key, value)
            if value is None:
                raise UnreachableError(source, target)
            return value

    def travel_times_from(self, source: Any) -> Mapping[Any, float]:
        """Exact one-to-all distances (one full-graph Dijkstra).

        A bounded estimate towards *every* node would need a certified
        upper bound per node — as expensive as the Dijkstra itself — so
        the full-map shapes stay exact and the overlay's win lives in
        ``travel_time`` / ``travel_times_many`` (the dispatch shapes).
        """
        with self._query_lock:
            self._queries += 1
            return self._dijkstra_from(source)

    def travel_times_to(self, target: Any) -> Mapping[Any, float]:
        """Exact all-to-one distances (one reverse Dijkstra); see above."""
        with self._query_lock:
            self._queries += 1
            return self._dijkstra_to(target)

    def travel_times_many(
        self, sources: Iterable[Any], targets: Iterable[Any]
    ) -> dict[tuple[Any, Any], float]:
        """Batched product queries, each within the certified bound.

        The representative pairs of the whole batch are pushed through
        the inner oracle's own ``travel_times_many`` first — one
        coarse-graph batch (RPHAST buckets under the ch inner backend)
        warms every ``d_c`` the per-pair pass needs — and the coarse
        path / intra-cluster leg memos amortise the upper-bound work
        across sources sharing a cluster.  Every answered pair honours
        ``error_bound`` exactly like ``travel_time`` (same code path).

        Stats contract: ``batched_queries`` counts attempted pairs,
        ``queries`` counts answered pairs.
        """
        with self._query_lock:
            source_list = list(dict.fromkeys(sources))
            target_list = list(dict.fromkeys(targets))
            self._batched_queries += len(source_list) * len(target_list)
            result: dict[tuple[Any, Any], float] = {}
            if not source_list or not target_list:
                return result
            rep = self.hierarchy.representative
            if not self.refine_mode:
                rep_sources = {rep(s) for s in source_list}
                rep_targets = {rep(t) for t in target_list}
                self.inner.travel_times_many(rep_sources, rep_targets)
            queries_before = self._queries
            for s_node in source_list:
                for t_node in target_list:
                    if s_node == t_node:
                        result[(s_node, t_node)] = 0.0
                        continue
                    key = (s_node, t_node)
                    cached = self._pair_cache.get(key, _MISSING)
                    if cached is not _MISSING:
                        self._cache_hits += 1
                        self._pair_cache.move_to_end(key)
                        if cached is not None:
                            result[key] = cached  # type: ignore[assignment]
                        continue
                    self._cache_misses += 1
                    value = self._answer(s_node, t_node)
                    self._remember(key, value)
                    if value is not None:
                        result[key] = value
            self._queries = queries_before + len(result)
            return result

    # ------------------------------------------------------------------
    # the bounded answer
    # ------------------------------------------------------------------
    def _answer(self, source: Any, target: Any) -> float | None:
        """Distance or ``None`` (unreachable), within the certified bound."""
        rep = self.hierarchy.representative
        ru, rv = rep(source), rep(target)
        if self.refine_mode or ru == rv:
            # Same-cluster pairs have d_c == 0: no useful certified gap,
            # and the pruned search is local anyway.
            return self._exact(source, target, None)
        try:
            d_c = self.inner.travel_time(ru, rv)
        except UnreachableError:
            # Coarse-unreachable implies base-unreachable (any base
            # path projects onto a coarse walk), so this verdict is
            # exact, not an estimate.
            return None
        upper = self._upper_bound(source, target, ru, rv)
        if upper == _INF:
            # One-way clusters broke the inflated corridor; no
            # certified upper bound exists along the coarse path.
            self._refined_queries += 1
            return self._exact(source, target, None)
        gap = (upper - d_c) / d_c if d_c > 0 else _INF
        if gap > self.error_bound:
            self._refined_queries += 1
            exact = self._exact(source, target, upper)
            if exact is None:
                # A finite ``upper`` is the cost of a real base path, so
                # the target is certainly reachable: an exhausted bounded
                # search can only mean the bound rounded a few ulps below
                # the true float distance (the corridor summed in a
                # different association order than Dijkstra's running
                # sum).  Rerun unbounded; the slack in ``_exact`` makes
                # this vanishingly rare.
                exact = self._exact(source, target, None)
            return exact
        estimate = self._off_out[source] + d_c + self._off_in[target]
        estimate = min(max(estimate, d_c), upper)
        self._gap_sum += gap
        self._gap_count += 1
        if gap > self._gap_max:
            self._gap_max = gap
        return estimate

    def _upper_bound(
        self, source: Any, target: Any, ru: Any, rv: Any
    ) -> float:
        """Cost of the inflated coarse shortest path (a real base path)."""
        path = self._coarse_path(ru, rv)
        if path is None:
            return _INF
        hierarchy = self.hierarchy
        total = 0.0
        cursor = source
        cluster = ru
        for a, b in zip(path, path[1:]):
            tail, head, weight = hierarchy.crossing(a, b)
            leg = self._leg(cluster, cursor, tail)
            if leg == _INF:
                return _INF
            total += leg + weight
            cursor = head
            cluster = b
        leg = self._leg(cluster, cursor, target)
        if leg == _INF:
            return _INF
        return total + leg

    def _coarse_path(self, ru: Any, rv: Any) -> list | None:
        """Memoised coarse shortest path between representatives."""
        key = (ru, rv)
        cached = self._coarse_paths.get(key, _MISSING)
        if cached is not _MISSING:
            self._coarse_paths.move_to_end(key)
            return cached  # type: ignore[return-value]
        path: list | None
        path = self.inner.shortest_path(ru, rv)
        if path is None:
            # Inner backend cannot reconstruct paths; Dijkstra on the
            # coarse graph is still tiny relative to the full graph.
            try:
                path = nx.dijkstra_path(
                    self.hierarchy.coarse_graph, ru, rv, weight="travel_time"
                )
            except nx.NetworkXNoPath:
                path = None
        self._coarse_paths[key] = path
        if len(self._coarse_paths) > _COARSE_PATH_CACHE_SIZE:
            self._coarse_paths.popitem(last=False)
            self._evictions += 1
        return path

    def _leg(self, anchor: Any, start: Any, end: Any) -> float:
        """Memoised intra-cluster distance ``start -> end`` within ``anchor``."""
        if start == end:
            return 0.0
        key = (anchor, start, end)
        cached = self._legs.get(key)
        if cached is not None:
            self._legs.move_to_end(key)
            return cached
        value = self.hierarchy.local_distances(anchor, start).get(end, _INF)
        self._legs[key] = value
        if len(self._legs) > _LEG_CACHE_SIZE:
            self._legs.popitem(last=False)
            self._evictions += 1
        return value

    def _exact(
        self, source: Any, target: Any, upper: float | None
    ) -> float | None:
        """Full-graph Dijkstra, early-stopped at the target.

        ``upper`` (a certified upper bound when available) prunes the
        frontier: labels beyond it can never be the answer because the
        true distance is known to be <= ``upper``.  The bound gets a few
        ulps of slack: it was assembled from path legs in a different
        association order than Dijkstra's running sum, so when the
        corridor *is* the shortest path the two floats can disagree by
        rounding alone — without slack the search would prune its only
        path and wrongly report unreachable.
        """
        self._pp_searches += 1
        graph = self._graph
        bound = _INF if upper is None else upper * (1.0 + 1e-9)
        dist: dict[Any, float] = {source: 0.0}
        heap: list[tuple[float, Any]] = [(0.0, source)]
        while heap:
            d, u = heappop(heap)
            if d > dist.get(u, _INF):
                continue
            if u == target:
                return d
            for v in graph.successors(u):
                nd = d + float(graph[u][v]["travel_time"])
                if nd <= bound and nd < dist.get(v, _INF):
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return None

    # ------------------------------------------------------------------
    # cache management and instrumentation
    # ------------------------------------------------------------------
    def _remember(self, key: tuple[Any, Any], value: float | None) -> None:
        self._pair_cache[key] = value
        if (
            self._pair_cache_size is not None
            and len(self._pair_cache) > self._pair_cache_size
        ):
            self._pair_cache.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        with self._query_lock:
            self._pair_cache.clear()
            self._coarse_paths.clear()
            self._legs.clear()
            self._drop_reverse_graph()
            self.inner.clear()

    def cache_info(self) -> CacheInfo:
        with self._query_lock:
            return CacheInfo(
                hits=self._cache_hits,
                misses=self._cache_misses,
                maxsize=self._pair_cache_size,
                currsize=len(self._pair_cache),
            )

    def _extra_stats(self) -> dict[str, float]:
        with self._query_lock:
            coarse = self.hierarchy.coarse_graph
            base_nodes = self._graph.number_of_nodes()
            coarse_nodes = coarse.number_of_nodes()
            return {
                "levels_built": float(self.hierarchy.levels_built),
                "coarse_nodes": float(coarse_nodes),
                "coarse_edges": float(coarse.number_of_edges()),
                "compression_ratio": (
                    base_nodes / coarse_nodes if coarse_nodes else 0.0
                ),
                "refined_queries": float(self._refined_queries),
                "projection_error_max": self._gap_max,
                "projection_error_mean": (
                    self._gap_sum / self._gap_count if self._gap_count else 0.0
                ),
                "exact_mode": float(self.refine_mode),
                "hierarchy_from_cache": float(self.hierarchy_from_cache),
                "inner_precompute_seconds": float(
                    getattr(self.inner, "precompute_seconds", 0.0)
                ),
            }
