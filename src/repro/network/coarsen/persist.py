"""Disk persistence of coarsening hierarchies in the oracle cache.

Mirrors :mod:`repro.network.oracle.cache`'s CH persistence: payloads
are keyed by the full graph's content signature *plus* the coarsening
parameters, written atomically, read under the resilience layer's
retry policy, and quarantined to ``<name>.corrupt`` when unparseable.
A payload that parses but does not partition the graph (or was built
with other parameters) is an ordinary miss — the caller re-coarsens
and overwrites it.

Only the per-level parent maps are stored: coarse graphs and crossing
edges are rebuilt from the base graph on load
(:meth:`CoarseningHierarchy.from_payload`), which keeps payloads small
and makes the graph itself the source of truth.
"""

from __future__ import annotations

import json
from pathlib import Path

import networkx as nx

from ...resilience.faults import fault_point
from ...resilience.retry import retry_call
from ..oracle.cache import CACHE_IO_POLICY, graph_signature, quarantine_cache_file
from .coarsener import COARSEN_FORMAT, CoarseningHierarchy, CoarseningParams


def coarsen_cache_path(
    cache_dir: str | Path, graph: nx.DiGraph, params: CoarseningParams
) -> Path:
    """Cache-file location for ``graph`` coarsened with ``params``."""
    signature = graph_signature(graph)
    return Path(cache_dir) / (
        f"coarsen-{signature[:24]}-L{params.levels}"
        f"-a{params.alpha:g}-b{params.beta:g}-r{params.stop_ratio:g}.json"
    )


def load_hierarchy(
    path: str | Path, graph: nx.DiGraph, params: CoarseningParams
) -> CoarseningHierarchy | None:
    """Read a persisted hierarchy, or ``None`` on any miss.

    ``None`` uniformly covers no file, unreadable bytes (quarantined),
    another graph's signature, other parameters, or a payload that no
    longer partitions the graph — callers re-coarsen from scratch; the
    cache can never change an answer, only make readiness fast.
    """
    file_path = Path(path)
    if not file_path.exists():
        return None

    def read_bytes() -> bytes:
        fault_point("oracle.cache.load")
        return file_path.read_bytes()

    try:
        blob = retry_call(read_bytes, policy=CACHE_IO_POLICY)
    except OSError:
        return None
    try:
        payload = json.loads(blob)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        quarantine_cache_file(file_path)
        return None
    if not isinstance(payload, dict):
        quarantine_cache_file(file_path)
        return None
    if payload.get("format") != COARSEN_FORMAT:
        return None
    if payload.get("graph") != graph_signature(graph):
        return None
    recorded = payload.get("params")
    wanted = {
        "levels": params.levels,
        "alpha": params.alpha,
        "beta": params.beta,
        "stop_ratio": params.stop_ratio,
    }
    if recorded != wanted:
        return None
    data = payload.get("data")
    if not isinstance(data, dict):
        quarantine_cache_file(file_path)
        return None
    try:
        return CoarseningHierarchy.from_payload(graph, data)
    except ValueError:
        # Parsed but semantically unusable for this graph: treat like
        # any other rotten payload so the next process rebuilds once.
        quarantine_cache_file(file_path)
        return None


def save_hierarchy(
    path: str | Path, hierarchy: CoarseningHierarchy, graph: nx.DiGraph
) -> Path:
    """Persist ``hierarchy`` for ``graph`` at ``path`` (atomic, retried).

    Raises ``OSError`` after the retry policy is exhausted; callers
    treat saving as best effort — a run never fails because its cache
    could not be written.
    """
    file_path = Path(path)
    payload = {
        "format": COARSEN_FORMAT,
        "graph": graph_signature(graph),
        "params": {
            "levels": hierarchy.params.levels,
            "alpha": hierarchy.params.alpha,
            "beta": hierarchy.params.beta,
            "stop_ratio": hierarchy.params.stop_ratio,
        },
        "data": hierarchy.to_payload(),
    }
    serialised = json.dumps(payload)

    def write() -> None:
        fault_point("oracle.cache.save")
        file_path.parent.mkdir(parents=True, exist_ok=True)
        scratch = file_path.with_name(file_path.name + ".tmp")
        scratch.write_text(serialised)
        scratch.replace(file_path)

    retry_call(write, policy=CACHE_IO_POLICY)
    return file_path
