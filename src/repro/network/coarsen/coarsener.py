"""Multilevel matching-based graph coarsening.

City-scale road networks (10^5–10^6 nodes) are too large for the
preprocessing-heavy oracle backends: CH contraction and dense matrix
rows are the bottleneck long before dispatch is.  Coarsening shrinks
the graph level by level so those backends run on a few thousand
supernodes instead:

1. **Matching.**  Each level greedily matches spatio-temporally close
   node pairs.  A pair ``(i, j)`` is *feasible* when the current-level
   graph connects them by at least one directed edge, and its merge
   cost is the weighted spatio-temporal distance

       ``D_ij = alpha * tau_ij + beta * temporal_slack_ij``

   where ``tau_ij`` is the cheaper directed travel time between the
   pair and ``temporal_slack_ij`` the asymmetry ``|w(i->j) - w(j->i)|``
   (a pair connected in only one direction pays its full weight as
   slack — merging it hides a one-way restriction).  Nodes are visited
   in deterministic sorted order and each picks its cheapest feasible
   unmatched neighbour, so two runs over one graph always produce the
   same hierarchy.

2. **Projection.**  Matched pairs collapse into a supernode named by
   the smaller member id (so every coarse node id *is* a base node id
   — its anchor).  A coarse edge ``(P, Q)`` takes the **minimum weight
   over all crossing finer edges**, and records which *base-graph*
   edge achieved that minimum (``base_edge``): the min of mins at any
   level is itself some base edge, which is what lets the overlay
   oracle inflate a coarse route back into a genuine full-graph path.

3. **Termination.**  Coarsening stops after ``levels`` rounds, when
   the graph is trivially small, or when a round fails to shrink the
   node count below ``stop_ratio`` of the previous level (matching has
   dried up — more rounds would only burn time).

Every pass is O(V + E) per level (plus the O(V log V) deterministic
sort), so a 100k-node city coarsens in seconds — no quadratic passes,
no dense intermediates.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Iterator, Mapping

import networkx as nx

_INF = float("inf")

#: Payload layout version of :meth:`CoarseningHierarchy.to_payload`;
#: bump when the persisted shape changes so stale cache files are
#: rebuilt instead of misread.
COARSEN_FORMAT = 1

#: Default number of coarsening rounds.
DEFAULT_LEVELS = 3

#: Default weight of the travel-time term of the merge cost.
DEFAULT_ALPHA = 1.0

#: Default weight of the temporal-slack term of the merge cost.
DEFAULT_BETA = 1.0

#: Default shrink requirement: a round keeping more than this fraction
#: of the previous level's nodes ends the hierarchy.
DEFAULT_STOP_RATIO = 0.95

#: Coarsening below this many nodes stops — the graph is already
#: trivially small for any inner backend.
_MIN_COARSE_NODES = 2


@dataclass(frozen=True)
class CoarseningParams:
    """The knobs one hierarchy was built with (part of its cache key)."""

    levels: int = DEFAULT_LEVELS
    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA
    stop_ratio: float = DEFAULT_STOP_RATIO

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("coarsening levels must be at least 1")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("coarsening alpha/beta must be non-negative")
        if not 0.0 < self.stop_ratio <= 1.0:
            raise ValueError("coarsening stop_ratio must lie in (0, 1]")


@dataclass(frozen=True)
class CoarseningLevel:
    """One round of coarsening.

    Attributes
    ----------
    graph:
        The coarse graph after this round.  Node ids are anchor base
        node ids; edges carry ``travel_time`` (min over crossing finer
        edges) and ``base_edge`` (the base-graph edge achieving it).
    parent:
        Finer-level node -> this level's supernode (anchor) id.
    children:
        Anchor id -> tuple of the finer-level nodes it absorbed
        (including itself).  Every finer node appears in exactly one
        tuple — the partition invariant the property tests pin.
    """

    graph: nx.DiGraph
    parent: Mapping[Any, Any]
    children: Mapping[Any, tuple]


class CoarseningHierarchy:
    """The product of :class:`MultilevelCoarsener`: levels plus maps.

    The hierarchy answers the three questions the overlay oracle and
    the contraction-order provider need:

    * ``representative(node)`` — which coarsest supernode a base node
      belongs to (its anchor, itself a base node id);
    * ``members(anchor)`` — the base nodes inside one coarsest
      supernode (the local-Dijkstra universe of offset precomputation
      and route inflation);
    * ``contraction_order()`` — base nodes ordered by how early their
      chain stopped being a representative: nodes absorbed at level 1
      first, the coarsest anchors last — a CH contraction order that
      contracts locally-unimportant nodes before hub nodes.
    """

    def __init__(
        self,
        base_graph: nx.DiGraph,
        levels: list[CoarseningLevel],
        params: CoarseningParams,
    ) -> None:
        self.base_graph = base_graph
        self.levels = levels
        self.params = params
        self._representative: dict[Any, Any] | None = None
        self._members: dict[Any, tuple] | None = None

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def levels_built(self) -> int:
        """Number of coarsening rounds actually performed."""
        return len(self.levels)

    @property
    def coarse_graph(self) -> nx.DiGraph:
        """The coarsest graph (the base graph when no round succeeded)."""
        return self.levels[-1].graph if self.levels else self.base_graph

    def _base_maps(self) -> tuple[dict[Any, Any], dict[Any, tuple]]:
        if self._representative is None:
            rep = {node: node for node in self.base_graph.nodes}
            for level in self.levels:
                parent = level.parent
                for node, current in rep.items():
                    rep[node] = parent[current]
            members: dict[Any, list] = {}
            for node, anchor in rep.items():
                members.setdefault(anchor, []).append(node)
            self._representative = rep
            self._members = {
                anchor: tuple(sorted(nodes))
                for anchor, nodes in members.items()
            }
        assert self._members is not None
        return self._representative, self._members

    def representative(self, node: Any) -> Any:
        """The coarsest supernode (anchor base node id) of a base node."""
        return self._base_maps()[0][node]

    def members(self, anchor: Any) -> tuple:
        """Base nodes inside the coarsest supernode ``anchor`` (sorted)."""
        return self._base_maps()[1][anchor]

    def crossing(self, a: Any, b: Any) -> tuple[Any, Any, float]:
        """The base edge realising coarse edge ``a -> b``: ``(u, v, weight)``.

        ``u`` lies in ``members(a)``, ``v`` in ``members(b)``, and
        ``weight`` equals both the base edge's travel time and the
        coarse edge's (the min over crossing edges *is* a base edge).
        """
        data = self.coarse_graph[a][b]
        base = data.get("base_edge")
        if base is None:
            # Zero rounds succeeded (the graph was already tiny), so the
            # "coarse" graph is the base graph and every edge realises
            # itself.
            return a, b, float(data["travel_time"])
        u, v = base
        return u, v, float(data["travel_time"])

    def local_distances(
        self, anchor: Any, start: Any, reverse: bool = False
    ) -> dict[Any, float]:
        """Dijkstra from ``start`` restricted to ``members(anchor)``.

        With ``reverse=True`` edges are traversed backwards, answering
        "distance *to* ``start``" for every member — the shape offset
        precomputation needs.  Linear in the cluster, never the graph.
        """
        allowed = set(self.members(anchor))
        graph = self.base_graph
        dist: dict[Any, float] = {start: 0.0}
        heap: list[tuple[float, Any]] = [(0.0, start)]
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            if reverse:
                neighbours: Iterator = (
                    (p, graph[p][u]["travel_time"])
                    for p in graph.predecessors(u)
                )
            else:
                neighbours = (
                    (s, graph[u][s]["travel_time"])
                    for s in graph.successors(u)
                )
            for v, w in neighbours:
                if v not in allowed:
                    continue
                nd = d + float(w)
                if nd < dist.get(v, _INF):
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return dist

    def contraction_order(self) -> list:
        """Base nodes ordered by coarsening survival (CH import order).

        A node absorbed into someone else's supernode at level 1 is
        locally unimportant — it goes first.  Anchors that survive all
        the way to the coarsest level are the hierarchy's hubs — they
        go last, exactly where CH wants its high-rank nodes.  Ties
        break on node id, so the order is deterministic.
        """
        survival = {node: 0 for node in self.base_graph.nodes}
        for depth, level in enumerate(self.levels, start=1):
            for anchor in level.children:
                survival[anchor] = depth
        return sorted(survival, key=lambda node: (survival[node], node))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able snapshot: the parent maps plus the build params.

        Coarse graphs and crossing edges are *not* stored — they are
        rebuilt from the base graph in O(E) per level on load, which
        keeps the payload small and makes a stale payload impossible
        to misread as fresh (the graph itself is the source of truth).
        """
        return {
            "format": COARSEN_FORMAT,
            "params": {
                "levels": self.params.levels,
                "alpha": self.params.alpha,
                "beta": self.params.beta,
                "stop_ratio": self.params.stop_ratio,
            },
            "parents": [
                [[child, parent] for child, parent in sorted(level.parent.items())]
                for level in self.levels
            ],
        }

    @classmethod
    def from_payload(
        cls, base_graph: nx.DiGraph, payload: Mapping
    ) -> "CoarseningHierarchy":
        """Rebuild a hierarchy from :meth:`to_payload` output.

        Raises ``ValueError`` when the payload is malformed or does not
        partition this graph's node set — callers treat that as a cache
        miss and re-coarsen.
        """
        if payload.get("format") != COARSEN_FORMAT:
            raise ValueError("unsupported coarsening payload format")
        raw_params = payload.get("params")
        raw_parents = payload.get("parents")
        if not isinstance(raw_params, Mapping) or not isinstance(raw_parents, list):
            raise ValueError("malformed coarsening payload")
        try:
            params = CoarseningParams(
                levels=int(raw_params["levels"]),
                alpha=float(raw_params["alpha"]),
                beta=float(raw_params["beta"]),
                stop_ratio=float(raw_params["stop_ratio"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed coarsening params: {exc}") from exc
        levels: list[CoarseningLevel] = []
        current = base_graph
        for rows in raw_parents:
            try:
                parent = {child: anchor for child, anchor in rows}
            except (TypeError, ValueError) as exc:
                raise ValueError("malformed coarsening parent rows") from exc
            if set(parent) != set(current.nodes):
                raise ValueError(
                    "coarsening payload does not partition this graph"
                )
            children: dict[Any, list] = {}
            for child, anchor in parent.items():
                children.setdefault(anchor, []).append(child)
            for anchor, kids in children.items():
                if anchor not in parent or parent[anchor] != anchor:
                    raise ValueError(
                        "coarsening payload anchors must map to themselves"
                    )
                del kids  # membership validated via the partition check
            coarse = _project(current, parent)
            levels.append(
                CoarseningLevel(
                    graph=coarse,
                    parent=parent,
                    children={
                        anchor: tuple(sorted(kids))
                        for anchor, kids in children.items()
                    },
                )
            )
            current = coarse
        return cls(base_graph, levels, params)


def _merge_cost(
    graph: nx.DiGraph, u: Any, v: Any, alpha: float, beta: float
) -> float:
    """``D_uv = alpha * tau + beta * temporal_slack`` for a connected pair."""
    w_uv = graph[u][v]["travel_time"] if graph.has_edge(u, v) else None
    w_vu = graph[v][u]["travel_time"] if graph.has_edge(v, u) else None
    if w_uv is not None and w_vu is not None:
        tau = min(float(w_uv), float(w_vu))
        slack = abs(float(w_uv) - float(w_vu))
    else:
        # One-way pair: merging hides a directional restriction, so the
        # whole weight counts as slack on top of the travel-time term.
        weight = float(w_uv if w_uv is not None else w_vu)  # type: ignore[arg-type]
        tau = weight
        slack = weight
    return alpha * tau + beta * slack


def _match(
    graph: nx.DiGraph,
    alpha: float,
    beta: float,
    max_merge_cost: float | None,
) -> dict[Any, Any]:
    """One greedy matching round: finer node -> supernode anchor.

    Deterministic: nodes are visited in sorted order and each unmatched
    node pairs with its cheapest feasible unmatched neighbour (ties on
    the smaller neighbour id).  Unmatched nodes become singleton
    supernodes anchored at themselves.
    """
    matched: dict[Any, Any] = {}
    for u in sorted(graph.nodes):
        if u in matched:
            continue
        best = None
        best_cost = _INF
        seen: set = set()
        for v in graph.successors(u):
            seen.add(v)
        for v in graph.predecessors(u):
            seen.add(v)
        for v in sorted(seen):
            if v == u or v in matched:
                continue
            cost = _merge_cost(graph, u, v, alpha, beta)
            if cost < best_cost:
                best_cost = cost
                best = v
        if best is not None and (
            max_merge_cost is None or best_cost <= max_merge_cost
        ):
            anchor = min(u, best)
            matched[u] = anchor
            matched[best] = anchor
    parent: dict[Any, Any] = {}
    for u in graph.nodes:
        parent[u] = matched.get(u, u)
    return parent


def _project(graph: nx.DiGraph, parent: Mapping[Any, Any]) -> nx.DiGraph:
    """Collapse one level: coarse weights are min over crossing edges.

    Each coarse edge also carries ``base_edge``, the *base-graph* edge
    realising its weight — inherited from the finer edge's own
    ``base_edge`` (or the finer edge itself at level 1), so the
    attribute always bottoms out in the original graph.
    """
    coarse = nx.DiGraph()
    for node, anchor in parent.items():
        del node
        coarse.add_node(anchor)
    for u, v, data in graph.edges(data=True):
        pu, pv = parent[u], parent[v]
        if pu == pv:
            continue
        weight = float(data["travel_time"])
        base_edge = data.get("base_edge", (u, v))
        existing = coarse.get_edge_data(pu, pv)
        if existing is None or weight < existing["travel_time"]:
            coarse.add_edge(pu, pv, travel_time=weight, base_edge=base_edge)
    return coarse


class MultilevelCoarsener:
    """Builds a :class:`CoarseningHierarchy` over a directed road graph.

    Parameters
    ----------
    graph:
        Directed graph with ``travel_time`` edge weights (the road
        network's graph, treated as frozen).
    levels:
        Maximum number of coarsening rounds.
    alpha / beta:
        Weights of the travel-time and temporal-slack terms of the
        merge cost ``D_ij = alpha*tau_ij + beta*temporal_slack_ij``.
    stop_ratio:
        A round keeping more than this fraction of the previous
        level's nodes terminates the hierarchy early.
    max_merge_cost:
        Optional feasibility ceiling: pairs whose merge cost exceeds
        it are never matched (``None`` = no ceiling).
    """

    def __init__(
        self,
        graph: nx.DiGraph,
        levels: int = DEFAULT_LEVELS,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
        stop_ratio: float = DEFAULT_STOP_RATIO,
        max_merge_cost: float | None = None,
    ) -> None:
        self._graph = graph
        self.params = CoarseningParams(
            levels=levels, alpha=alpha, beta=beta, stop_ratio=stop_ratio
        )
        if max_merge_cost is not None and max_merge_cost < 0:
            raise ValueError("max_merge_cost must be non-negative")
        self.max_merge_cost = max_merge_cost

    def build(self) -> CoarseningHierarchy:
        """Run the matching/projection rounds and return the hierarchy."""
        params = self.params
        levels: list[CoarseningLevel] = []
        current = self._graph
        for _ in range(params.levels):
            node_count = current.number_of_nodes()
            if node_count <= _MIN_COARSE_NODES:
                break
            parent = _match(
                current, params.alpha, params.beta, self.max_merge_cost
            )
            anchors = set(parent.values())
            if len(anchors) > params.stop_ratio * node_count:
                break
            coarse = _project(current, parent)
            children: dict[Any, list] = {}
            for child, anchor in parent.items():
                children.setdefault(anchor, []).append(child)
            levels.append(
                CoarseningLevel(
                    graph=coarse,
                    parent=dict(parent),
                    children={
                        anchor: tuple(sorted(kids))
                        for anchor, kids in children.items()
                    },
                )
            )
            current = coarse
        return CoarseningHierarchy(self._graph, levels, params)
