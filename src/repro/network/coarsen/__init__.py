"""Multilevel graph coarsening and the bounded-error overlay oracle.

The enabling layer for city-scale networks: a
:class:`MultilevelCoarsener` shrinks a 10^5-node graph to a few
thousand supernodes (matching-based merges under the spatio-temporal
cost ``D_ij = alpha*tau_ij + beta*temporal_slack``), the
:class:`OverlayOracle` answers full-graph distance queries from the
coarse graph with a *certified* relative error bound (registered as
the ``overlay`` backend), and
:func:`coarsening_contraction_order` turns the hierarchy into a CH
contraction order.  Hierarchies persist in the oracle cache keyed by
graph signature + coarsening parameters (:mod:`.persist`).
"""

from .coarsener import (
    COARSEN_FORMAT,
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    DEFAULT_LEVELS,
    DEFAULT_STOP_RATIO,
    CoarseningHierarchy,
    CoarseningLevel,
    CoarseningParams,
    MultilevelCoarsener,
)
from .order import CONTRACTION_ORDERS, coarsening_contraction_order
from .overlay import DEFAULT_ERROR_BOUND, OverlayOracle
from .persist import coarsen_cache_path, load_hierarchy, save_hierarchy

__all__ = [
    "COARSEN_FORMAT",
    "CONTRACTION_ORDERS",
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "DEFAULT_ERROR_BOUND",
    "DEFAULT_LEVELS",
    "DEFAULT_STOP_RATIO",
    "CoarseningHierarchy",
    "CoarseningLevel",
    "CoarseningParams",
    "MultilevelCoarsener",
    "OverlayOracle",
    "coarsen_cache_path",
    "coarsening_contraction_order",
    "load_hierarchy",
    "save_hierarchy",
]
