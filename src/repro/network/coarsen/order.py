"""Coarsening-derived contraction orders for the CH backend.

The hierarchy doubles as an importance ranking: a node absorbed into a
neighbour's supernode at level 1 is locally unimportant (contract it
first), while the anchors surviving to the coarsest level are the
network's hubs (contract them last).  Feeding that order into
:class:`~repro.network.oracle.ch.CHOracle` via its ``node_order``
parameter skips the lazy-heap priority maintenance of the classic
edge-difference order; the witness searches and shortcut machinery are
unchanged, so queries stay exact either way.

Selected through ``contraction_order="coarsening"`` on the ``ch``
backend's options (``OracleSpec(backend="ch",
contraction_order="coarsening")``); the registry keys the on-disk
preprocessing cache differently per order strategy so the two variants
never poison each other's files.
"""

from __future__ import annotations

import networkx as nx

from .coarsener import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    DEFAULT_LEVELS,
    DEFAULT_STOP_RATIO,
    MultilevelCoarsener,
)

#: Valid ``contraction_order`` option values of the ``ch`` backend.
CONTRACTION_ORDERS = ("edge_difference", "coarsening")


def coarsening_contraction_order(
    graph: nx.DiGraph,
    levels: int = DEFAULT_LEVELS,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
    stop_ratio: float = DEFAULT_STOP_RATIO,
) -> list:
    """A full contraction order (permutation of ``graph``'s nodes).

    Nodes are ordered by coarsening survival — absorbed-first,
    coarsest-anchors-last — with id tie-breaks, so the order is
    deterministic for a given graph and parameter set.
    """
    hierarchy = MultilevelCoarsener(
        graph, levels=levels, alpha=alpha, beta=beta, stop_ratio=stop_ratio
    ).build()
    return hierarchy.contraction_order()
