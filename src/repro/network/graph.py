"""Road network graph with travel-time shortest-path queries.

The WATTER algorithms only ever ask two questions of the road network:

* ``cost(a, b)`` — the shortest travel time between two locations
  (Definition 3 uses it to price every leg of a route), and
* node coordinates — used by the spatial grid index and the MDP state
  featurisation.

``RoadNetwork`` wraps a :class:`networkx.DiGraph` and answers both with
aggressive caching: every Dijkstra run from a source is stored so later
queries from the same source are dictionary lookups.  Workloads query
costs for a comparatively small set of pickup/dropoff nodes over and
over, which makes the per-source cache very effective.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import networkx as nx

from ..exceptions import NetworkError, UnknownNodeError, UnreachableError


class RoadNetwork:
    """A directed, travel-time-weighted road network.

    Parameters
    ----------
    graph:
        A ``networkx.DiGraph`` whose edges carry a ``travel_time``
        attribute (seconds) and whose nodes carry ``x``/``y``
        coordinates.  Undirected graphs are accepted and converted.
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise NetworkError("a road network needs at least one node")
        directed = graph.to_directed() if not graph.is_directed() else graph
        for u, v, data in directed.edges(data=True):
            if "travel_time" not in data:
                raise NetworkError(
                    f"edge ({u!r}, {v!r}) is missing the 'travel_time' attribute"
                )
            if data["travel_time"] < 0:
                raise NetworkError(
                    f"edge ({u!r}, {v!r}) has negative travel time"
                )
        for node, data in directed.nodes(data=True):
            if "x" not in data or "y" not in data:
                raise NetworkError(f"node {node!r} is missing x/y coordinates")
        self._graph = directed
        self._sssp_cache: dict[int, dict[int, float]] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        """The underlying directed graph (treat as read-only)."""
        return self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._graph

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids."""
        return iter(self._graph.nodes)

    def number_of_edges(self) -> int:
        """Number of directed edges."""
        return self._graph.number_of_edges()

    def coordinates(self, node_id: int) -> tuple[float, float]:
        """Return the ``(x, y)`` coordinates of a node."""
        self._require_node(node_id)
        data = self._graph.nodes[node_id]
        return float(data["x"]), float(data["y"])

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all nodes."""
        xs = [float(d["x"]) for _, d in self._graph.nodes(data=True)]
        ys = [float(d["y"]) for _, d in self._graph.nodes(data=True)]
        return min(xs), min(ys), max(xs), max(ys)

    # ------------------------------------------------------------------
    # shortest paths
    # ------------------------------------------------------------------
    def travel_time(self, source: int, target: int) -> float:
        """Shortest travel time (seconds) from ``source`` to ``target``.

        Raises
        ------
        UnknownNodeError
            If either endpoint is not part of the network.
        UnreachableError
            If the target cannot be reached from the source.
        """
        self._require_node(source)
        self._require_node(target)
        if source == target:
            return 0.0
        distances = self._distances_from(source)
        if target not in distances:
            raise UnreachableError(source, target)
        return distances[target]

    def travel_times_from(self, source: int) -> Mapping[int, float]:
        """All shortest travel times from ``source`` (cached)."""
        self._require_node(source)
        return self._distances_from(source)

    def shortest_path(self, source: int, target: int) -> list[int]:
        """Return the node sequence of a shortest path."""
        self._require_node(source)
        self._require_node(target)
        try:
            return nx.dijkstra_path(
                self._graph, source, target, weight="travel_time"
            )
        except nx.NetworkXNoPath as exc:
            raise UnreachableError(source, target) from exc

    def is_reachable(self, source: int, target: int) -> bool:
        """Whether a path exists from ``source`` to ``target``."""
        self._require_node(source)
        self._require_node(target)
        if source == target:
            return True
        return target in self._distances_from(source)

    def clear_cache(self) -> None:
        """Drop all cached single-source shortest-path results."""
        self._sssp_cache.clear()

    # ------------------------------------------------------------------
    # sampling helpers
    # ------------------------------------------------------------------
    def nodes_sorted(self) -> list[int]:
        """Node ids in a deterministic order (for reproducible sampling)."""
        return sorted(self._graph.nodes)

    def nearest_node(self, x: float, y: float) -> int:
        """Node id whose coordinates are closest (Euclidean) to ``(x, y)``."""
        best_node = None
        best_dist = float("inf")
        for node, data in self._graph.nodes(data=True):
            dx = float(data["x"]) - x
            dy = float(data["y"]) - y
            dist = dx * dx + dy * dy
            if dist < best_dist:
                best_dist = dist
                best_node = node
        assert best_node is not None  # the constructor rejects empty graphs
        return best_node

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_node(self, node_id: int) -> None:
        if node_id not in self._graph:
            raise UnknownNodeError(node_id)

    def _distances_from(self, source: int) -> dict[int, float]:
        cached = self._sssp_cache.get(source)
        if cached is None:
            cached = nx.single_source_dijkstra_path_length(
                self._graph, source, weight="travel_time"
            )
            self._sssp_cache[source] = cached
        return cached


def build_network(
    nodes: Iterable[tuple[int, float, float]],
    edges: Iterable[tuple[int, int, float]],
    bidirectional: bool = True,
) -> RoadNetwork:
    """Construct a :class:`RoadNetwork` from plain tuples.

    Parameters
    ----------
    nodes:
        ``(node_id, x, y)`` triples.
    edges:
        ``(u, v, travel_time)`` triples.
    bidirectional:
        When true (default) every edge is inserted in both directions,
        which matches the paper's undirected example network.
    """
    graph = nx.DiGraph()
    for node_id, x, y in nodes:
        graph.add_node(node_id, x=float(x), y=float(y))
    for u, v, travel_time in edges:
        graph.add_edge(u, v, travel_time=float(travel_time))
        if bidirectional:
            graph.add_edge(v, u, travel_time=float(travel_time))
    return RoadNetwork(graph)
