"""Road network graph with travel-time shortest-path queries.

The WATTER algorithms only ever ask two questions of the road network:

* ``cost(a, b)`` — the shortest travel time between two locations
  (Definition 3 uses it to price every leg of a route), and
* node coordinates — used by the spatial grid index and the MDP state
  featurisation.

``RoadNetwork`` wraps a :class:`networkx.DiGraph` and delegates every
shortest-path question to a pluggable
:class:`~repro.network.oracle.DistanceOracle`.  The default backend is
:class:`~repro.network.oracle.LazyDijkstraOracle` — run one Dijkstra per
unseen source and cache the distance map (LRU-bounded) — which matches
the access pattern of small workloads.  Heavier workloads swap in the
``landmark`` (ALT bidirectional A*), ``matrix`` (precomputed dense
rows) or ``ch`` (contraction hierarchy) backend via
:meth:`use_backend`, ``SimulationConfig`` or the CLI without any
dispatcher code changing.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping, TYPE_CHECKING

import networkx as nx

from ..exceptions import NetworkError, UnknownNodeError, UnreachableError
from .oracle.base import CacheInfo, OracleStats
from .oracle.lazy import DEFAULT_MAX_SOURCES, LazyDijkstraOracle

if TYPE_CHECKING:  # pragma: no cover
    from .oracle.base import DistanceOracle


class RoadNetwork:
    """A directed, travel-time-weighted road network.

    Parameters
    ----------
    graph:
        A ``networkx.DiGraph`` whose edges carry a ``travel_time``
        attribute (seconds) and whose nodes carry ``x``/``y``
        coordinates.  Undirected graphs are accepted and converted.
    oracle:
        Distance oracle answering shortest-path queries.  Defaults to a
        :class:`LazyDijkstraOracle` with an LRU cache of
        ``cache_size`` sources.
    cache_size:
        LRU bound of the default oracle's per-source cache (``None`` =
        unbounded).  Ignored when ``oracle`` is given.
    """

    def __init__(
        self,
        graph: nx.Graph,
        oracle: "DistanceOracle | None" = None,
        cache_size: int | None = DEFAULT_MAX_SOURCES,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise NetworkError("a road network needs at least one node")
        directed = graph.to_directed() if not graph.is_directed() else graph
        for u, v, data in directed.edges(data=True):
            if "travel_time" not in data:
                raise NetworkError(
                    f"edge ({u!r}, {v!r}) is missing the 'travel_time' attribute"
                )
            if data["travel_time"] < 0:
                raise NetworkError(
                    f"edge ({u!r}, {v!r}) has negative travel time"
                )
        for node, data in directed.nodes(data=True):
            if "x" not in data or "y" not in data:
                raise NetworkError(f"node {node!r} is missing x/y coordinates")
        self._graph = directed
        self._nearest_index: "_NearestNodeIndex | None" = None
        self._oracle: "DistanceOracle" = (
            oracle
            if oracle is not None
            else LazyDijkstraOracle(directed, max_sources=cache_size)
        )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        """The underlying directed graph (treat as read-only)."""
        return self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._graph

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids."""
        return iter(self._graph.nodes)

    def number_of_edges(self) -> int:
        """Number of directed edges."""
        return self._graph.number_of_edges()

    def coordinates(self, node_id: int) -> tuple[float, float]:
        """Return the ``(x, y)`` coordinates of a node."""
        self._require_node(node_id)
        data = self._graph.nodes[node_id]
        return float(data["x"]), float(data["y"])

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all nodes."""
        xs = [float(d["x"]) for _, d in self._graph.nodes(data=True)]
        ys = [float(d["y"]) for _, d in self._graph.nodes(data=True)]
        return min(xs), min(ys), max(xs), max(ys)

    # ------------------------------------------------------------------
    # distance-oracle management
    # ------------------------------------------------------------------
    @property
    def oracle(self) -> "DistanceOracle":
        """The distance oracle currently answering shortest-path queries."""
        return self._oracle

    def set_oracle(self, oracle: "DistanceOracle") -> None:
        """Swap in a different distance oracle (must wrap this graph)."""
        if oracle.graph is not self._graph:
            raise NetworkError(
                "the oracle was built over a different graph; build it over "
                "RoadNetwork.graph"
            )
        self._oracle = oracle

    def use_backend(self, name: str, **options) -> "DistanceOracle":
        """Build the named registry backend over this graph and attach it.

        ``options`` are forwarded to the backend factory (``nodes``,
        ``cache_size``, ``num_landmarks``, ``seed``).  Returns the new
        oracle.
        """
        from .oracle.registry import create_oracle

        oracle = create_oracle(name, self._graph, **options)
        self._oracle = oracle
        return oracle

    # ------------------------------------------------------------------
    # shortest paths
    # ------------------------------------------------------------------
    def travel_time(self, source: int, target: int) -> float:
        """Shortest travel time (seconds) from ``source`` to ``target``.

        Raises
        ------
        UnknownNodeError
            If either endpoint is not part of the network.
        UnreachableError
            If the target cannot be reached from the source.
        """
        self._require_node(source)
        self._require_node(target)
        if source == target:
            return 0.0
        return self._oracle.travel_time(source, target)

    def travel_times_from(self, source: int) -> Mapping[int, float]:
        """All shortest travel times from ``source`` (cached)."""
        self._require_node(source)
        return self._oracle.travel_times_from(source)

    def travel_times_to(self, target: int) -> Mapping[int, float]:
        """All shortest travel times *to* ``target`` (cached).

        The many-to-one mirror of :meth:`travel_times_from`, answered by
        a single search on the reversed graph: the returned mapping is
        ``source -> d(source, target)`` for every source that can reach
        the target.  This is the primitive behind the dispatch hot
        path's "how far is each idle worker from this pickup?" batches.
        """
        self._require_node(target)
        return self._oracle.travel_times_to(target)

    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        """Batched travel times over the ``sources x targets`` product.

        Returns ``(source, target) -> seconds``; unreachable pairs are
        absent from the result.  This is the API the route planner, the
        shareability graph and the fleet use so precomputing backends
        can answer whole query blocks at once.
        """
        source_list = list(dict.fromkeys(sources))
        target_list = list(dict.fromkeys(targets))
        for node in source_list:
            self._require_node(node)
        for node in target_list:
            self._require_node(node)
        return self._oracle.travel_times_many(source_list, target_list)

    def shortest_path(self, source: int, target: int) -> list[int]:
        """Return the node sequence of a shortest path.

        Answered by the attached oracle when its backend can produce
        paths (the contraction-hierarchy backend unpacks its shortcuts
        back into original edges); backends that only know distances
        fall back to a plain Dijkstra on the underlying graph.
        """
        self._require_node(source)
        self._require_node(target)
        path = self._oracle.shortest_path(source, target)
        if path is not None:
            return path
        try:
            return nx.dijkstra_path(
                self._graph, source, target, weight="travel_time"
            )
        except nx.NetworkXNoPath as exc:
            raise UnreachableError(source, target) from exc

    def is_reachable(self, source: int, target: int) -> bool:
        """Whether a path exists from ``source`` to ``target``."""
        self._require_node(source)
        self._require_node(target)
        if source == target:
            return True
        return self._oracle.is_reachable(source, target)

    def clear_cache(self) -> None:
        """Drop the oracle's cached shortest-path state."""
        self._oracle.clear()

    def cache_info(self) -> CacheInfo:
        """``lru_cache``-style summary of the oracle's main cache."""
        return self._oracle.cache_info()

    def oracle_stats(self) -> OracleStats:
        """Query/cache counters of the active oracle backend."""
        return self._oracle.stats()

    # ------------------------------------------------------------------
    # sampling helpers
    # ------------------------------------------------------------------
    def nodes_sorted(self) -> list[int]:
        """Node ids in a deterministic order (for reproducible sampling)."""
        return sorted(self._graph.nodes)

    def nearest_node(self, x: float, y: float) -> int:
        """Node id whose coordinates are closest (Euclidean) to ``(x, y)``.

        Answered from a lazily built bucket-grid index (O(V) once, then
        ~O(1) per query on evenly spread networks) instead of a linear
        scan, so demand sampling on a 10^5-node city does not turn into
        a quadratic pass.  Ties resolve exactly like the old scan: the
        first node in graph iteration order wins.
        """
        if self._nearest_index is None:
            self._nearest_index = _NearestNodeIndex(self._graph)
        return self._nearest_index.query(x, y)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_node(self, node_id: int) -> None:
        if node_id not in self._graph:
            raise UnknownNodeError(node_id)


class _NearestNodeIndex:
    """Bucket grid answering nearest-node queries in expanding rings.

    Nodes are binned into ~sqrt(V) x sqrt(V) square cells over the
    bounding box; a query scans its own cell first and widens the
    Chebyshev ring until no unscanned cell can hold a closer — or
    equally close but earlier — node.  Candidates are ranked by
    ``(squared distance, graph insertion rank)``, which reproduces the
    strict-improvement linear scan bit for bit: among equidistant
    nodes the one seen first in graph iteration order wins.
    """

    def __init__(self, graph: nx.DiGraph) -> None:
        entries = [
            (rank, node, float(data["x"]), float(data["y"]))
            for rank, (node, data) in enumerate(graph.nodes(data=True))
        ]
        xs = [entry[2] for entry in entries]
        ys = [entry[3] for entry in entries]
        self._min_x = min(xs)
        self._min_y = min(ys)
        span_x = (max(xs) - self._min_x) or 1.0
        span_y = (max(ys) - self._min_y) or 1.0
        self._size = max(1, int(math.isqrt(len(entries))))
        self._cell_w = span_x / self._size
        self._cell_h = span_y / self._size
        self._buckets: dict[tuple[int, int], list[tuple[int, int, float, float]]]
        self._buckets = {}
        for entry in entries:
            self._buckets.setdefault(self._cell_of(entry[2], entry[3]), []).append(
                entry
            )

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        col = min(max(int((x - self._min_x) / self._cell_w), 0), self._size - 1)
        row = min(max(int((y - self._min_y) / self._cell_h), 0), self._size - 1)
        return row, col

    def query(self, x: float, y: float) -> int:
        row, col = self._cell_of(x, y)
        size = self._size
        cell_min = min(self._cell_w, self._cell_h)
        best: tuple[float, int, int] | None = None  # (dist2, rank, node)
        for radius in range(2 * size + 1):
            if best is not None:
                # Every node in an unscanned cell is at least
                # ``(radius - 1) * cell_min`` away (the query point can
                # sit anywhere inside its own cell, hence the -1).  The
                # strict comparison keeps scanning while an exact tie
                # with a lower rank is still geometrically possible.
                reach = (radius - 1) * cell_min
                if reach > 0 and reach * reach > best[0]:
                    break
            lo_r, hi_r = row - radius, row + radius
            for r in range(max(lo_r, 0), min(hi_r, size - 1) + 1):
                if r in (lo_r, hi_r):
                    cols = range(max(col - radius, 0), min(col + radius, size - 1) + 1)
                else:
                    cols = (c for c in (col - radius, col + radius) if 0 <= c < size)
                for c in cols:
                    for rank, node, nx_, ny_ in self._buckets.get((r, c), ()):
                        dx = nx_ - x
                        dy = ny_ - y
                        candidate = (dx * dx + dy * dy, rank, node)
                        if best is None or candidate < best:
                            best = candidate
        assert best is not None  # RoadNetwork rejects empty graphs
        return best[2]


def build_network(
    nodes: Iterable[tuple[int, float, float]],
    edges: Iterable[tuple[int, int, float]],
    bidirectional: bool = True,
) -> RoadNetwork:
    """Construct a :class:`RoadNetwork` from plain tuples.

    Parameters
    ----------
    nodes:
        ``(node_id, x, y)`` triples.
    edges:
        ``(u, v, travel_time)`` triples.
    bidirectional:
        When true (default) every edge is inserted in both directions,
        which matches the paper's undirected example network.
    """
    graph = nx.DiGraph()
    for node_id, x, y in nodes:
        graph.add_node(node_id, x=float(x), y=float(y))
    for u, v, travel_time in edges:
        graph.add_edge(u, v, travel_time=float(travel_time))
        if bidirectional:
            graph.add_edge(v, u, travel_time=float(travel_time))
    return RoadNetwork(graph)
