"""Exception hierarchy for the WATTER reproduction library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch library problems without catching unrelated Python
errors.  Subclasses distinguish the layer that failed (network queries,
route planning, pool bookkeeping, learning, configuration) because the
recovery action differs for each.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An experiment or simulation configuration is inconsistent."""


class NetworkError(ReproError):
    """A road-network query failed (unknown node, disconnected pair...)."""


class UnknownNodeError(NetworkError):
    """A node id was requested that the road network does not contain."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id!r} is not part of the road network")
        self.node_id = node_id


class UnreachableError(NetworkError):
    """No path exists between two nodes of the road network."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no path from node {source!r} to node {target!r}")
        self.source = source
        self.target = target


class RoutingError(ReproError):
    """A feasible route could not be constructed for an order group."""


class InfeasibleGroupError(RoutingError):
    """The order group admits no route satisfying all constraints."""


class PoolError(ReproError):
    """The order pool was asked to do something inconsistent."""


class DuplicateOrderError(PoolError):
    """An order id was inserted into the pool twice."""

    def __init__(self, order_id: int) -> None:
        super().__init__(f"order {order_id!r} is already in the pool")
        self.order_id = order_id


class MissingOrderError(PoolError):
    """An order id was referenced that the pool does not contain."""

    def __init__(self, order_id: int) -> None:
        super().__init__(f"order {order_id!r} is not in the pool")
        self.order_id = order_id


class DependencyError(ReproError):
    """A feature was requested whose optional dependency is missing.

    Raised at construction time, never import time: ``import repro``
    works in a pure-Python environment, and only actually *using* a
    numpy-only subsystem (GMM threshold fitting, the state encoder,
    value-function training) raises, naming the feature and the
    missing package.
    """


class LearningError(ReproError):
    """Training or evaluating the value function failed."""


class DatasetError(ReproError):
    """A workload could not be generated or parsed."""
