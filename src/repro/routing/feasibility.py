"""Constraint checks for candidate routes (Definition 7).

A route is feasible for a group served by a worker when:

1. *Sequential constraint*: every order's pickup precedes its dropoff.
2. *Deadline constraint*: ``t + t_r + T(L^{(i)}) < tau`` for every
   member ``i`` — the order is dropped off before its deadline, counting
   the response time already spent and the approach time of the worker.
3. *Capacity constraint*: the number of riders on board never exceeds
   the vehicle capacity.

The checks are separated from the planner so baselines (GDP's greedy
insertion, GAS's additive tree) can reuse them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..model.order import Order
    from ..model.route import Route


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of checking a route against the METRS constraints.

    ``violations`` lists human-readable reasons; an empty list means the
    route is feasible.
    """

    feasible: bool
    violations: tuple[str, ...] = field(default_factory=tuple)

    @staticmethod
    def ok() -> "FeasibilityReport":
        """A passing report."""
        return FeasibilityReport(feasible=True)

    @staticmethod
    def fail(*violations: str) -> "FeasibilityReport":
        """A failing report carrying the violation reasons."""
        return FeasibilityReport(feasible=False, violations=tuple(violations))


def check_sequential(route: "Route", orders: Sequence["Order"]) -> list[str]:
    """Check that every order's pickup precedes its dropoff on the route."""
    violations = []
    for order in orders:
        try:
            pickup_idx = route.pickup_index(order.order_id)
            dropoff_idx = route.dropoff_index(order.order_id)
        except Exception:  # missing stop: reported as a violation, not a crash
            violations.append(f"order {order.order_id} missing a stop on the route")
            continue
        if pickup_idx >= dropoff_idx:
            violations.append(
                f"order {order.order_id} dropoff precedes its pickup"
            )
    return violations


def check_deadlines(
    route: "Route",
    orders: Sequence["Order"],
    start_time: float,
    approach_time: float = 0.0,
) -> list[str]:
    """Check the deadline constraint for every order.

    Parameters
    ----------
    route:
        Candidate route.
    orders:
        The group members.
    start_time:
        Time at which the worker would be dispatched (``t + t_r``).
    approach_time:
        Travel time for the worker to reach the route's first stop.
    """
    violations = []
    for order in orders:
        arrival = start_time + approach_time + route.sub_route_time(order.order_id)
        if arrival > order.deadline:
            violations.append(
                f"order {order.order_id} would be dropped off at {arrival:.1f}s "
                f"after its deadline {order.deadline:.1f}s"
            )
    return violations


def check_capacity(
    route: "Route", orders: Sequence["Order"], capacity: int
) -> list[str]:
    """Check that the onboard rider count never exceeds ``capacity``."""
    peak = route.max_onboard_riders(orders)
    if peak > capacity:
        return [f"route peaks at {peak} riders but capacity is {capacity}"]
    return []


def check_route(
    route: "Route",
    orders: Iterable["Order"],
    capacity: int,
    start_time: float,
    approach_time: float = 0.0,
) -> FeasibilityReport:
    """Run all three METRS constraints against a candidate route."""
    members = list(orders)
    violations = []
    violations.extend(check_sequential(route, members))
    violations.extend(check_deadlines(route, members, start_time, approach_time))
    violations.extend(check_capacity(route, members, capacity))
    if violations:
        return FeasibilityReport.fail(*violations)
    return FeasibilityReport.ok()
