"""Greedy insertion of an order into an existing route.

This is the primitive the GDP baseline [9] is built on: given a worker's
current route, try every position pair for the new order's pickup and
dropoff stops, keep the cheapest insertion that still satisfies the
sequential / deadline / capacity constraints.  The WATTER planner also
uses it as a fallback for groups too large to enumerate exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TYPE_CHECKING

from ..model.route import Route, RouteStop, StopKind
from .feasibility import check_route

if TYPE_CHECKING:  # pragma: no cover
    from ..model.order import Order
    from ..network.graph import RoadNetwork


@dataclass(frozen=True)
class InsertionResult:
    """Outcome of the cheapest feasible insertion of an order."""

    route: Route
    added_travel_time: float
    pickup_position: int
    dropoff_position: int


def insert_order_into_route(
    route: Route | None,
    order: "Order",
    existing_orders: Sequence["Order"],
    capacity: int,
    start_time: float,
    network: "RoadNetwork",
    approach_time: float = 0.0,
) -> InsertionResult | None:
    """Insert ``order`` into ``route`` at the cheapest feasible position.

    Parameters
    ----------
    route:
        The route being extended.  ``None`` means the worker is idle and
        a fresh two-stop route is created.
    existing_orders:
        Orders already served by ``route`` (their constraints must keep
        holding after the insertion).
    capacity:
        Vehicle capacity.
    start_time:
        Time at which the (new) route starts being driven.
    network:
        Road network for pricing.
    approach_time:
        Travel time from the worker's current position to the first stop
        of the candidate route, included in deadline checks.

    Returns
    -------
    InsertionResult | None
        The cheapest feasible insertion, or ``None`` if every position
        violates a constraint.
    """
    pickup_stop = RouteStop(order.pickup, order.order_id, StopKind.PICKUP)
    dropoff_stop = RouteStop(order.dropoff, order.order_id, StopKind.DROPOFF)
    all_orders = list(existing_orders) + [order]

    if route is None or len(route) == 0:
        candidate = Route([pickup_stop, dropoff_stop], network)
        report = check_route(candidate, all_orders, capacity, start_time, approach_time)
        if not report.feasible:
            return None
        return InsertionResult(
            route=candidate,
            added_travel_time=candidate.total_travel_time,
            pickup_position=0,
            dropoff_position=1,
        )

    base_stops = list(route.stops)
    base_cost = route.total_travel_time
    best: InsertionResult | None = None
    for pickup_pos in range(len(base_stops) + 1):
        for dropoff_pos in range(pickup_pos + 1, len(base_stops) + 2):
            stops = list(base_stops)
            stops.insert(pickup_pos, pickup_stop)
            stops.insert(dropoff_pos, dropoff_stop)
            candidate = Route(stops, network)
            report = check_route(
                candidate, all_orders, capacity, start_time, approach_time
            )
            if not report.feasible:
                continue
            added = candidate.total_travel_time - base_cost
            if best is None or added < best.added_travel_time:
                best = InsertionResult(
                    route=candidate,
                    added_travel_time=added,
                    pickup_position=pickup_pos,
                    dropoff_position=dropoff_pos,
                )
    return best
