"""Best-route planning for order groups.

Given a set of orders, ``RoutePlanner`` finds the feasible route with
minimal total travel time (the quantity ``T(L)`` that Definition 3 of
the paper prices).  For the small groups the paper considers (vehicle
capacities 2-5, so groups of 2-5 orders) exhaustive enumeration of all
valid pickup/dropoff interleavings is cheap; larger groups fall back to
a greedy insertion construction.

The planner is the single source of feasible routes for the whole
library: the shareability graph, the WATTER dispatcher and the GAS
baseline all call into it, which keeps the constraint semantics in one
place.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence, TYPE_CHECKING

from ..exceptions import InfeasibleGroupError
from ..model.route import Route, RouteStop, StopKind
from .feasibility import check_route
from .insertion import insert_order_into_route

if TYPE_CHECKING:  # pragma: no cover
    from ..model.order import Order
    from ..network.graph import RoadNetwork


# Exhaustive enumeration explores (2k)! / 2^k stop orders for k orders;
# k=3 means 90 permutations per plan which keeps pool updates cheap, while
# k=4 would already cost 2520 permutations per candidate group.  Larger
# groups fall back to the greedy-insertion construction.
_EXACT_GROUP_LIMIT = 3


@dataclass(frozen=True)
class PlannedGroup:
    """A feasible route for a group plus the cost the planner minimised."""

    route: Route
    total_travel_time: float


class RoutePlanner:
    """Finds minimum-travel-time feasible routes for order groups.

    Parameters
    ----------
    network:
        Road network used to price route legs.
    exact_group_limit:
        Largest group size for which all stop interleavings are
        enumerated exactly; larger groups use greedy insertion.
    """

    def __init__(
        self, network: "RoadNetwork", exact_group_limit: int = _EXACT_GROUP_LIMIT
    ) -> None:
        self._network = network
        self._exact_group_limit = max(exact_group_limit, 1)

    @property
    def network(self) -> "RoadNetwork":
        """The road network the planner prices routes on."""
        return self._network

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def plan(
        self,
        orders: Sequence["Order"],
        capacity: int,
        start_time: float,
        start_node: int | None = None,
    ) -> PlannedGroup:
        """Return the cheapest feasible route for ``orders``.

        Parameters
        ----------
        orders:
            The group members (1 to capacity orders).
        capacity:
            Vehicle capacity the route must respect.
        start_time:
            Time at which the route would start being driven.
        start_node:
            Worker's current node.  When given, the approach leg from the
            worker to the first pickup is included in the deadline check
            (but not in ``total_travel_time``, matching the paper's
            definition of ``T(L)`` over the route itself).

        Raises
        ------
        InfeasibleGroupError
            If no stop ordering satisfies all constraints.
        """
        members = list(orders)
        if not members:
            raise InfeasibleGroupError("cannot plan a route for an empty group")
        if len(members) <= self._exact_group_limit:
            planned = self._plan_exact(members, capacity, start_time, start_node)
        else:
            planned = self._plan_by_insertion(members, capacity, start_time, start_node)
        if planned is None:
            raise InfeasibleGroupError(
                f"no feasible route for orders {[o.order_id for o in members]}"
            )
        return planned

    def try_plan(
        self,
        orders: Sequence["Order"],
        capacity: int,
        start_time: float,
        start_node: int | None = None,
    ) -> PlannedGroup | None:
        """Like :meth:`plan` but returns ``None`` instead of raising."""
        try:
            return self.plan(orders, capacity, start_time, start_node)
        except InfeasibleGroupError:
            return None

    def can_share(
        self,
        first: "Order",
        second: "Order",
        capacity: int,
        start_time: float,
    ) -> PlannedGroup | None:
        """Cheapest feasible pairwise route, or ``None`` if the pair can't share.

        This is the primitive the temporal shareability graph uses to
        decide whether to connect two orders with an edge.
        """
        if first.riders + second.riders > capacity:
            return None
        return self.try_plan([first, second], capacity, start_time)

    # ------------------------------------------------------------------
    # exact enumeration
    # ------------------------------------------------------------------
    def _plan_exact(
        self,
        orders: Sequence["Order"],
        capacity: int,
        start_time: float,
        start_node: int | None,
    ) -> PlannedGroup | None:
        self._prefetch(orders, start_node)
        best: PlannedGroup | None = None
        for stops in self._candidate_stop_orders(orders):
            route = Route(stops, self._network)
            approach = self._approach_time(start_node, route)
            report = check_route(route, orders, capacity, start_time, approach)
            if not report.feasible:
                continue
            if best is None or route.total_travel_time < best.total_travel_time:
                best = PlannedGroup(route, route.total_travel_time)
        return best

    def _candidate_stop_orders(
        self, orders: Sequence["Order"]
    ) -> Iterable[list[RouteStop]]:
        """Yield every stop permutation where pickups precede dropoffs."""
        stops = []
        for order in orders:
            stops.append(RouteStop(order.pickup, order.order_id, StopKind.PICKUP))
            stops.append(RouteStop(order.dropoff, order.order_id, StopKind.DROPOFF))
        for permutation in itertools.permutations(stops):
            if self._pickups_precede_dropoffs(permutation):
                yield list(permutation)

    @staticmethod
    def _pickups_precede_dropoffs(stops: Sequence[RouteStop]) -> bool:
        picked: set[int] = set()
        for stop in stops:
            if stop.kind is StopKind.PICKUP:
                picked.add(stop.order_id)
            elif stop.order_id not in picked:
                return False
        return True

    # ------------------------------------------------------------------
    # insertion fallback for larger groups
    # ------------------------------------------------------------------
    def _plan_by_insertion(
        self,
        orders: Sequence["Order"],
        capacity: int,
        start_time: float,
        start_node: int | None,
    ) -> PlannedGroup | None:
        self._prefetch(orders, start_node)
        seed, *rest = sorted(orders, key=lambda order: order.release_time)
        stops = [
            RouteStop(seed.pickup, seed.order_id, StopKind.PICKUP),
            RouteStop(seed.dropoff, seed.order_id, StopKind.DROPOFF),
        ]
        route = Route(stops, self._network)
        placed = [seed]
        for order in rest:
            result = insert_order_into_route(
                route, order, placed, capacity, start_time, self._network
            )
            if result is None:
                return None
            route = result.route
            placed.append(order)
        approach = self._approach_time(start_node, route)
        report = check_route(route, placed, capacity, start_time, approach)
        if not report.feasible:
            return None
        return PlannedGroup(route, route.total_travel_time)

    def _approach_time(self, start_node: int | None, route: Route) -> float:
        if start_node is None:
            return 0.0
        return self._network.travel_time(start_node, route.start_node)

    def _prefetch(self, orders: Sequence["Order"], start_node: int | None) -> None:
        """Warm the distance oracle for every leg the plan can touch.

        One ``travel_times_many`` call covers the whole stop-node block,
        so precomputing backends answer it as a batch (one refresh)
        instead of being hit with scalar queries from inside the
        permutation loop.  Dropoffs only become leg *sources* when
        several orders interleave, so the singleton case stays as cheap
        as before for the lazy backend.
        """
        pickups = {order.pickup for order in orders}
        dropoffs = {order.dropoff for order in orders}
        targets = pickups | dropoffs
        sources = set(pickups) if len(orders) == 1 else set(targets)
        if start_node is not None:
            sources.add(start_node)
        self._network.travel_times_many(sources, targets)
