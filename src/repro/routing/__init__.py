"""Route planning for order groups under the METRS constraints."""

from .feasibility import check_route, FeasibilityReport
from .planner import RoutePlanner, PlannedGroup
from .insertion import insert_order_into_route, InsertionResult

__all__ = [
    "check_route",
    "FeasibilityReport",
    "RoutePlanner",
    "PlannedGroup",
    "insert_order_into_route",
    "InsertionResult",
]
