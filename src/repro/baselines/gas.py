"""GAS baseline [2]: batch-based grouping with utility maximisation.

GAS buffers the orders released during one batch window (a few seconds),
then — at the batch boundary — enumerates candidate order groups for the
available workers, scores each group by its *utility* (the travel time
saved compared with serving the members individually) and greedily
commits disjoint groups in decreasing utility order.  Orders that could
not be grouped or assigned stay buffered for the next batch until their
deadline makes them unservable.

The exhaustive group enumeration inside each batch is what makes GAS the
slowest algorithm in the paper's running-time plots; the batch boundary
is what prevents it from matching orders across batches (Example 1), so
its extra time and service rate trail the WATTER variants.  Both effects
are reproduced here.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from ..config import SimulationConfig
from ..model.group import Group
from ..model.order import Order, OrderStatus
from ..routing.planner import RoutePlanner
from ..simulation.dispatcher import (
    Dispatcher,
    DispatchResult,
    served_orders_from_group,
)
from ..simulation.fleet import WorkerFleet

if TYPE_CHECKING:  # pragma: no cover
    pass


#: Maximum number of buffered orders entering the combinatorial group
#: enumeration of one batch (oldest first); singletons are always
#: considered for every buffered order.
_ENUMERATION_CAP = 24


class GASDispatcher(Dispatcher):
    """Batch-based grouping and assignment (the GAS baseline)."""

    name = "GAS"

    def __init__(
        self,
        planner: RoutePlanner,
        fleet: WorkerFleet,
        config: SimulationConfig,
        batch_size: float | None = None,
        max_batch_group: int | None = None,
    ) -> None:
        self._planner = planner
        self._fleet = fleet
        self._config = config
        self._batch_size = batch_size if batch_size is not None else config.check_period
        # Pairwise grouping dominates what the additive tree of [2] finds on
        # sparse batches and keeps the enumeration polynomial; larger values
        # reproduce the exponential blow-up the paper reports for GAS.
        self._max_group = max_batch_group or min(config.max_group_size, 2)
        self._buffer: list[Order] = []
        self._next_batch_end: float | None = None

    @property
    def fleet(self) -> WorkerFleet:
        """The worker fleet assignments are booked against."""
        return self._fleet

    @property
    def batch_size(self) -> float:
        """Width of the batching window in seconds."""
        return self._batch_size

    # ------------------------------------------------------------------
    # Dispatcher interface
    # ------------------------------------------------------------------
    def submit(self, order: Order, now: float) -> DispatchResult:
        """Buffer the order until the end of the current batch."""
        self._buffer.append(order)
        if self._next_batch_end is None:
            self._next_batch_end = (
                (now // self._batch_size) + 1
            ) * self._batch_size
        return DispatchResult.empty()

    def tick(self, now: float) -> DispatchResult:
        """Process the batch if the batch window has elapsed."""
        if self._next_batch_end is None or now < self._next_batch_end:
            return self._drop_expired(now)
        self._next_batch_end = ((now // self._batch_size) + 1) * self._batch_size
        return self._process_batch(now)

    def flush(self, now: float) -> DispatchResult:
        """Process one final batch, then reject whatever is left."""
        result = self._process_batch(now)
        rejected = tuple(self._buffer)
        for order in rejected:
            order.status = OrderStatus.REJECTED
        self._buffer.clear()
        return result.merge(DispatchResult(rejected=rejected))

    # ------------------------------------------------------------------
    # batch processing
    # ------------------------------------------------------------------
    def _process_batch(self, now: float) -> DispatchResult:
        expired = self._drop_expired(now)
        if not self._buffer:
            return expired
        self._fleet.release_finished(now)
        # Prime the approach legs of the whole batch in one many-to-one
        # block per pickup: every idle worker location against each
        # buffered pickup (one reverse-graph search per pickup on the
        # lazy backend).  The per-group nearest-worker searches below
        # then answer from warm caches.
        idle_locations = set(self._fleet.idle_locations(now))
        pickups = {order.pickup for order in self._buffer}
        if idle_locations and pickups:
            self._planner.network.travel_times_many(idle_locations, pickups)
        candidates = self._enumerate_groups(now)
        candidates.sort(key=lambda item: -item[0])
        served = []
        assigned: set[int] = set()
        for utility, group in candidates:
            if any(order.order_id in assigned for order in group.orders):
                continue
            if utility < 0:
                continue
            worker = self._fleet.find_worker_for(group, now)
            if worker is None:
                continue
            self._fleet.assign(worker, group, now)
            for order in group.orders:
                order.status = OrderStatus.DISPATCHED
                assigned.add(order.order_id)
            served.extend(served_orders_from_group(group, now, worker.worker_id))
        self._buffer = [
            order for order in self._buffer if order.order_id not in assigned
        ]
        return expired.merge(DispatchResult(served=tuple(served)))

    def _enumerate_groups(self, now: float) -> list[tuple[float, Group]]:
        """All feasible groups of buffered orders with their utility.

        Utility of a group is the travel time saved against serving each
        member alone: ``sum_i cost(p_i, d_i) - T(L)``.  Singletons have
        zero utility and act as the fallback assignment.

        To keep the per-batch cost bounded when unassigned orders
        accumulate, the combinatorial enumeration considers at most the
        ``_ENUMERATION_CAP`` oldest buffered orders (the full additive
        tree of [2] is exponential in the batch size, which is exactly
        why GAS is the slowest algorithm in the paper's evaluation); a
        cheap temporal-compatibility filter prunes pairs whose deadlines
        cannot possibly be combined before the route planner is invoked.
        """
        groups: list[tuple[float, Group]] = []
        buffer = sorted(self._buffer, key=lambda order: order.release_time)
        window = buffer[:_ENUMERATION_CAP]
        for order in buffer:
            planned = self._planner.try_plan([order], self._config.max_capacity, now)
            if planned is None:
                continue
            groups.append(
                (
                    0.0,
                    Group(
                        orders=(order,),
                        route=planned.route,
                        created_at=now,
                        weights=self._config.weights,
                    ),
                )
            )
        for size in range(2, self._max_group + 1):
            for combo in itertools.combinations(window, size):
                if sum(order.riders for order in combo) > self._config.max_capacity:
                    continue
                if not self._temporally_compatible(combo, now):
                    continue
                planned = self._planner.try_plan(
                    list(combo), self._config.max_capacity, now
                )
                if planned is None:
                    continue
                group = Group(
                    orders=tuple(combo),
                    route=planned.route,
                    created_at=now,
                    weights=self._config.weights,
                )
                individual = sum(order.shortest_time for order in combo)
                utility = individual - planned.total_travel_time
                groups.append((utility, group))
        return groups

    @staticmethod
    def _temporally_compatible(orders, now: float) -> bool:
        """Necessary condition for a shared route to exist.

        Every member must still be deliverable even if its own trip were
        the last leg of the shared route, i.e. its remaining slack must
        at least cover its direct travel time.  Orders that fail this on
        their own can never participate in a feasible shared route.
        """
        return all(order.deadline - now - order.shortest_time >= 0 for order in orders)

    def _drop_expired(self, now: float) -> DispatchResult:
        rejected = tuple(order for order in self._buffer if order.is_expired(now))
        if rejected:
            for order in rejected:
                order.status = OrderStatus.REJECTED
            rejected_ids = {order.order_id for order in rejected}
            self._buffer = [
                order for order in self._buffer if order.order_id not in rejected_ids
            ]
        return DispatchResult(rejected=rejected)
