"""GDP baseline [9]: online greedy insertion into worker routes.

GDP answers every order immediately: it scans the fleet, tries to insert
the new order's pickup and dropoff into each worker's *remaining* route
at the cheapest feasible positions, and commits the globally cheapest
insertion.  If no worker admits a feasible insertion the order is
rejected on the spot.

The reproduction tracks, per worker, a schedule of stops with planned
arrival times.  When an insertion is evaluated at time ``t`` the stops
already reached stay fixed, only the remaining suffix is re-planned.
Because the platform responds instantly, the response time of a GDP
order is zero and its "extra time" is entirely detour:
``(scheduled dropoff - release) - shortest trip time``, i.e. everything
the rider experiences beyond an immediate direct ride.  This matches the
role GDP plays in the paper's comparison: the fastest algorithm, but the
one with the longest detours and the lowest service rate under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..config import SimulationConfig
from ..model.order import Order, OrderStatus
from ..model.route import RouteStop, StopKind
from ..model.worker import Worker
from ..simulation.dispatcher import Dispatcher, DispatchResult, ServedOrder
from ..simulation.fleet import WorkerFleet

if TYPE_CHECKING:  # pragma: no cover
    from ..network.graph import RoadNetwork


@dataclass
class _ScheduledStop:
    """A stop on a worker's live schedule with its planned arrival time."""

    node: int
    order_id: int
    kind: StopKind
    arrival_time: float


@dataclass
class _WorkerPlan:
    """The live schedule of one worker under GDP."""

    worker: Worker
    current_node: int
    available_at: float
    stops: list[_ScheduledStop] = field(default_factory=list)
    orders: dict[int, Order] = field(default_factory=dict)

    def progress(self, now: float) -> None:
        """Advance past the stops whose planned arrival time has passed."""
        while self.stops and self.stops[0].arrival_time <= now:
            stop = self.stops.pop(0)
            self.current_node = stop.node
            self.available_at = stop.arrival_time
            if stop.kind is StopKind.DROPOFF:
                self.orders.pop(stop.order_id, None)

    def onboard_riders(self) -> int:
        """Riders currently in the vehicle (picked up, not yet dropped)."""
        pending_pickups = {
            stop.order_id for stop in self.stops if stop.kind is StopKind.PICKUP
        }
        riders = 0
        for order_id, order in self.orders.items():
            if order_id not in pending_pickups:
                riders += order.riders
        return riders

    def scheduled_travel_time(self, now: float, network: "RoadNetwork") -> float:
        """Remaining driving time of the current schedule from ``now``."""
        if not self.stops:
            return 0.0
        total = network.travel_time(self.current_node, self.stops[0].node)
        for previous, current in zip(self.stops, self.stops[1:]):
            total += network.travel_time(previous.node, current.node)
        return total


@dataclass(frozen=True)
class _Insertion:
    """A candidate insertion of one order into one worker's schedule."""

    plan: _WorkerPlan
    new_stops: list[_ScheduledStop]
    added_travel_time: float
    dropoff_time: float


class GDPDispatcher(Dispatcher):
    """Greedy online insertion (the GDP baseline of the paper)."""

    name = "GDP"

    def __init__(
        self,
        network: "RoadNetwork",
        fleet: WorkerFleet,
        config: SimulationConfig,
    ) -> None:
        self._network = network
        self._fleet = fleet
        self._config = config
        self._plans = [
            _WorkerPlan(worker=worker, current_node=worker.location, available_at=0.0)
            for worker in fleet
        ]
        self._served: list[ServedOrder] = []
        self._scheduled_dropoffs: dict[int, tuple[Order, float, int]] = {}

    @property
    def fleet(self) -> WorkerFleet:
        """The worker fleet (travel time is accounted onto it)."""
        return self._fleet

    # ------------------------------------------------------------------
    # Dispatcher interface
    # ------------------------------------------------------------------
    def submit(self, order: Order, now: float) -> DispatchResult:
        """Serve or reject the order immediately (online response)."""
        for plan in self._plans:
            plan.progress(now)
        best = self._best_insertion(order, now)
        if best is None:
            order.status = OrderStatus.REJECTED
            return DispatchResult(rejected=(order,))
        self._commit(best, order, now)
        return DispatchResult.empty()

    def tick(self, now: float) -> DispatchResult:
        """Emit the outcomes of orders whose dropoff has been reached."""
        for plan in self._plans:
            plan.progress(now)
        return self._emit_completed(now)

    def flush(self, now: float) -> DispatchResult:
        """Emit every remaining scheduled order at the end of the horizon."""
        return self._emit_completed(float("inf"))

    # ------------------------------------------------------------------
    # insertion search
    # ------------------------------------------------------------------
    def _best_insertion(self, order: Order, now: float) -> _Insertion | None:
        # One many-to-one batch per insertion target primes every
        # vehicle-position -> pickup and X -> dropoff leg the per-plan
        # searches below will price: on the lazy backend that is two
        # reverse-graph Dijkstras for the whole fleet instead of one
        # forward Dijkstra per vehicle position.
        positions = {plan.current_node for plan in self._plans}
        self._network.travel_times_many(
            positions | {order.pickup}, [order.pickup, order.dropoff]
        )
        best: _Insertion | None = None
        for plan in self._plans:
            candidate = self._cheapest_insertion_for_plan(plan, order, now)
            if candidate is None:
                continue
            if best is None or candidate.added_travel_time < best.added_travel_time:
                best = candidate
        return best

    def _cheapest_insertion_for_plan(
        self, plan: _WorkerPlan, order: Order, now: float
    ) -> _Insertion | None:
        base_stops = plan.stops
        base_cost = plan.scheduled_travel_time(now, self._network)
        start_time = max(now, plan.available_at)
        # Plans with live schedules still batch-prime the legs between
        # their existing stops (the fleet-wide many-to-one prime above
        # already covers the pickup/dropoff legs of empty schedules).
        if base_stops:
            nodes = {plan.current_node, order.pickup, order.dropoff}
            nodes.update(stop.node for stop in base_stops)
            self._network.travel_times_many(nodes, nodes)
        best: _Insertion | None = None
        positions = len(base_stops)
        for pickup_pos in range(positions + 1):
            for dropoff_pos in range(pickup_pos, positions + 1):
                stops = self._build_candidate(base_stops, order, pickup_pos, dropoff_pos)
                timed = self._schedule(stops, plan.current_node, start_time)
                if timed is None:
                    continue
                if not self._respects_constraints(plan, order, timed):
                    continue
                new_cost = timed[-1].arrival_time - start_time
                added = new_cost - base_cost
                dropoff_time = next(
                    stop.arrival_time
                    for stop in timed
                    if stop.order_id == order.order_id
                    and stop.kind is StopKind.DROPOFF
                )
                if best is None or added < best.added_travel_time:
                    best = _Insertion(plan, timed, added, dropoff_time)
        return best

    @staticmethod
    def _build_candidate(
        base_stops: list[_ScheduledStop],
        order: Order,
        pickup_pos: int,
        dropoff_pos: int,
    ) -> list[RouteStop]:
        stops = [RouteStop(stop.node, stop.order_id, stop.kind) for stop in base_stops]
        stops.insert(pickup_pos, RouteStop(order.pickup, order.order_id, StopKind.PICKUP))
        stops.insert(
            dropoff_pos + 1, RouteStop(order.dropoff, order.order_id, StopKind.DROPOFF)
        )
        return stops

    def _schedule(
        self, stops: list[RouteStop], start_node: int, start_time: float
    ) -> list[_ScheduledStop] | None:
        timed = []
        current_node = start_node
        current_time = start_time
        for stop in stops:
            current_time += self._network.travel_time(current_node, stop.node)
            current_node = stop.node
            timed.append(
                _ScheduledStop(stop.node, stop.order_id, stop.kind, current_time)
            )
        return timed

    def _respects_constraints(
        self, plan: _WorkerPlan, new_order: Order, timed: list[_ScheduledStop]
    ) -> bool:
        orders = dict(plan.orders)
        orders[new_order.order_id] = new_order
        picked: set[int] = set(
            order_id
            for order_id in plan.orders
            if all(
                not (s.order_id == order_id and s.kind is StopKind.PICKUP)
                for s in plan.stops
            )
        )
        riders = plan.onboard_riders()
        capacity = plan.worker.capacity
        for stop in timed:
            order = orders.get(stop.order_id)
            if order is None:
                return False
            if stop.kind is StopKind.PICKUP:
                if stop.order_id in picked:
                    return False
                picked.add(stop.order_id)
                riders += order.riders
                if riders > capacity:
                    return False
            else:
                if stop.order_id not in picked:
                    return False
                riders -= order.riders
                if stop.arrival_time > order.deadline:
                    return False
        return True

    # ------------------------------------------------------------------
    # commit and completion
    # ------------------------------------------------------------------
    def _commit(self, insertion: _Insertion, order: Order, now: float) -> None:
        plan = insertion.plan
        plan.stops = insertion.new_stops
        plan.orders[order.order_id] = order
        plan.available_at = max(plan.available_at, now)
        order.status = OrderStatus.DISPATCHED
        self._fleet.add_travel_time(max(insertion.added_travel_time, 0.0))
        group_size = len({stop.order_id for stop in insertion.new_stops})
        self._scheduled_dropoffs[order.order_id] = (
            order,
            insertion.dropoff_time,
            plan.worker.worker_id,
        )
        # Update the recorded dropoff times of the other orders riding the
        # same vehicle: the insertion may have delayed them.
        for stop in insertion.new_stops:
            if stop.kind is StopKind.DROPOFF and stop.order_id != order.order_id:
                entry = self._scheduled_dropoffs.get(stop.order_id)
                if entry is not None:
                    self._scheduled_dropoffs[stop.order_id] = (
                        entry[0],
                        stop.arrival_time,
                        entry[2],
                    )
        del group_size

    def _emit_completed(self, now: float) -> DispatchResult:
        served = []
        for order_id, (order, dropoff_time, worker_id) in list(
            self._scheduled_dropoffs.items()
        ):
            if dropoff_time <= now:
                detour = max(
                    (dropoff_time - order.release_time) - order.shortest_time, 0.0
                )
                served.append(
                    ServedOrder(
                        order=order,
                        response_time=0.0,
                        detour_time=detour,
                        dispatch_time=order.release_time,
                        worker_id=worker_id,
                        group_size=1,
                    )
                )
                del self._scheduled_dropoffs[order_id]
        return DispatchResult(served=tuple(served))
