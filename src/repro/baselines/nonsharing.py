"""Non-sharing baseline: every order rides alone.

This is the first strategy of Example 1: workers serve orders
sequentially, one at a time, with no pooling at all.  It is not one of
the paper's headline baselines but it provides the sanity floor every
sharing algorithm must beat and is required to reproduce Example 1.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..config import SimulationConfig
from ..model.group import Group
from ..model.order import Order, OrderStatus
from ..routing.planner import RoutePlanner
from ..simulation.dispatcher import (
    Dispatcher,
    DispatchResult,
    served_orders_from_group,
)
from ..simulation.fleet import WorkerFleet

if TYPE_CHECKING:  # pragma: no cover
    pass


class NonSharingDispatcher(Dispatcher):
    """Assign each order alone to the nearest idle worker.

    Orders that cannot be assigned immediately wait in a FIFO queue and
    are retried on every tick until either a worker frees up or their
    deadline can no longer be met (rejection).
    """

    name = "NonSharing"

    def __init__(
        self,
        planner: RoutePlanner,
        fleet: WorkerFleet,
        config: SimulationConfig,
    ) -> None:
        self._planner = planner
        self._fleet = fleet
        self._config = config
        self._queue: deque[Order] = deque()

    @property
    def fleet(self) -> WorkerFleet:
        """The worker fleet assignments are booked against."""
        return self._fleet

    # ------------------------------------------------------------------
    # Dispatcher interface
    # ------------------------------------------------------------------
    def submit(self, order: Order, now: float) -> DispatchResult:
        """Try to serve the order immediately, otherwise queue it."""
        self._queue.append(order)
        return self._drain_queue(now)

    def tick(self, now: float) -> DispatchResult:
        """Retry the queued orders against newly idle workers."""
        return self._drain_queue(now)

    def flush(self, now: float) -> DispatchResult:
        """Reject everything still queued at the end of the horizon."""
        rejected = tuple(self._queue)
        for order in rejected:
            order.status = OrderStatus.REJECTED
        self._queue.clear()
        return DispatchResult(rejected=rejected)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _drain_queue(self, now: float) -> DispatchResult:
        self._fleet.release_finished(now)
        # Prime every queued pickup's approach legs with one many-to-one
        # block (one reverse-graph search per pickup on the lazy
        # backend) so the per-order nearest-worker searches below hit
        # warm caches instead of running one Dijkstra per idle worker.
        idle_locations = set(self._fleet.idle_locations(now))
        pickups = {
            order.pickup for order in self._queue if not order.is_expired(now)
        }
        if idle_locations and pickups:
            self._planner.network.travel_times_many(idle_locations, pickups)
        served = []
        rejected = []
        remaining: deque[Order] = deque()
        while self._queue:
            order = self._queue.popleft()
            if order.is_expired(now):
                order.status = OrderStatus.REJECTED
                rejected.append(order)
                continue
            group = self._singleton_group(order, now)
            if group is None:
                order.status = OrderStatus.REJECTED
                rejected.append(order)
                continue
            worker = self._fleet.find_worker_for(group, now)
            if worker is None:
                remaining.append(order)
                continue
            self._fleet.assign(worker, group, now)
            order.status = OrderStatus.DISPATCHED
            served.extend(served_orders_from_group(group, now, worker.worker_id))
        self._queue = remaining
        return DispatchResult(served=tuple(served), rejected=tuple(rejected))

    def _singleton_group(self, order: Order, now: float) -> Group | None:
        planned = self._planner.try_plan([order], self._config.max_capacity, now)
        if planned is None:
            return None
        return Group(
            orders=(order,),
            route=planned.route,
            created_at=now,
            weights=self._config.weights,
        )
