"""Baseline dispatchers the paper compares WATTER against."""

from .gdp import GDPDispatcher
from .gas import GASDispatcher
from .nonsharing import NonSharingDispatcher

__all__ = ["GDPDispatcher", "GASDispatcher", "NonSharingDispatcher"]
